"""Unit tests for the declarative experiment-spec additions of the fault
plane: optional axes (byte-invisible until opted in), expected-shape
declarations, omit-default params serialisation, and the epoch-aware
exclusion hook on the MP monitor."""

from dataclasses import dataclass, field

import pytest

from repro.errors import ConfigurationError
from repro.core.protocol import QueryRoundOutcome
from repro.experiments.api import (
    Banded,
    ExperimentSpec,
    FaultAxis,
    Monotone,
    ParamAxis,
    TrialAxis,
    check_shapes,
)
from repro.harness.spec import params_to_dict
from repro.sim.faults import FaultPlan, RecoveryFault
from repro.sim.monitors import MessagePatternMonitor


@dataclass(frozen=True)
class FakeParams:
    sizes: tuple = (2, 4)
    trials: int = 2
    faults: tuple = field(default=(), metadata={"omit_default": True})
    seed: int = 1

    @classmethod
    def full(cls):
        return cls()


def make_spec(shapes=()):
    return ExperimentSpec(
        exp_id="fake",
        title="fake",
        params_cls=FakeParams,
        axes=(FaultAxis(), ParamAxis(name="n", field="sizes"), TrialAxis()),
        run_cell=lambda params, coords, seed: {},
        tabulate=lambda params, values: None,
        shapes=tuple(shapes),
    )


class TestOptionalAxis:
    def test_empty_fault_axis_vanishes_from_grid(self):
        spec = make_spec()
        cells = spec.cells(FakeParams())
        assert len(cells) == 4
        assert all("fault" not in cell for cell in cells)
        assert cells[0] == {"n": 2, "trial": 0}

    def test_populated_fault_axis_prefixes_coords(self):
        spec = make_spec()
        cells = spec.cells(FakeParams(faults=("partition",)))
        assert len(cells) == 4
        assert all(cell["fault"] == "partition" for cell in cells)

    def test_unknown_fault_name_rejected_at_expansion(self):
        spec = make_spec()
        with pytest.raises(ConfigurationError, match="nosuch"):
            spec.cells(FakeParams(faults=("nosuch",)))

    def test_mandatory_axes_never_vanish(self):
        assert FaultAxis().optional is True
        assert ParamAxis(name="n", field="sizes").optional is False


class TestOmitDefault:
    def test_default_value_omitted(self):
        assert "faults" not in params_to_dict(FakeParams())

    def test_non_default_value_kept(self):
        d = params_to_dict(FakeParams(faults=("partition",)))
        assert d["faults"] == ("partition",)

    def test_plain_fields_always_present(self):
        d = params_to_dict(FakeParams())
        assert d["sizes"] == (2, 4)
        assert d["trials"] == 2


class TestShapes:
    def test_monotone_clean(self):
        shape = Monotone("m", along="n", direction="increasing")
        cells = [{"n": 2, "trial": 0}, {"n": 2, "trial": 1},
                 {"n": 4, "trial": 0}, {"n": 4, "trial": 1}]
        values = [{"m": 1.0}, {"m": 3.0}, {"m": 2.5}, {"m": 2.5}]
        # means: n=2 -> 2.0, n=4 -> 2.5: increasing
        assert shape.check(cells, values) == []

    def test_monotone_violation(self):
        shape = Monotone("m", along="n", direction="increasing")
        cells = [{"n": 2}, {"n": 4}]
        values = [{"m": 2.0}, {"m": 1.0}]
        violations = shape.check(cells, values)
        assert len(violations) == 1
        assert "not increasing" in violations[0]

    def test_monotone_tolerance_absorbs_jitter(self):
        shape = Monotone("m", along="n", direction="decreasing", tolerance=0.5)
        cells = [{"n": 2}, {"n": 4}]
        values = [{"m": 1.0}, {"m": 1.3}]  # rises 0.3 <= tolerance
        assert shape.check(cells, values) == []

    def test_monotone_groups_by_other_coords(self):
        shape = Monotone("m", along="n", direction="increasing")
        cells = [{"n": 2, "d": "a"}, {"n": 4, "d": "a"},
                 {"n": 2, "d": "b"}, {"n": 4, "d": "b"}]
        values = [{"m": 1.0}, {"m": 2.0}, {"m": 5.0}, {"m": 1.0}]
        violations = shape.check(cells, values)
        assert len(violations) == 1
        assert "'b'" in violations[0]

    def test_monotone_skips_missing_metric(self):
        shape = Monotone("m", along="n")
        assert shape.check([{"n": 2}, {"n": 4}], [{"m": 1.0}, {}]) == []

    def test_monotone_rejects_bad_direction(self):
        with pytest.raises(ConfigurationError):
            Monotone("m", along="n", direction="sideways")

    def test_banded_clean_and_violations(self):
        shape = Banded("p", lo=0.0, hi=1.0)
        cells = [{"n": 2}, {"n": 4}, {"n": 8}]
        assert shape.check(cells, [{"p": 0.0}, {"p": 0.5}, {"p": 1.0}]) == []
        violations = shape.check(cells, [{"p": -0.1}, {"p": 0.5}, {"p": 1.2}])
        assert len(violations) == 2
        assert "below lo" in violations[0]
        assert "above hi" in violations[1]

    def test_banded_needs_a_bound(self):
        with pytest.raises(ConfigurationError):
            Banded("p")

    def test_check_shapes_aggregates(self):
        spec = make_spec(
            shapes=(
                Banded("p", lo=0.0, hi=1.0),
                Monotone("m", along="n", direction="increasing"),
            )
        )
        params = FakeParams(trials=1)
        values = [{"p": 2.0, "m": 3.0}, {"p": 0.5, "m": 1.0}]
        violations = check_shapes(spec, params, values)
        assert len(violations) == 2


def certify(monitor, responder, queriers, rounds):
    """Feed enough winning rounds for ``responder`` to build streaks."""
    for round_id in range(rounds):
        for querier in queriers:
            monitor.observe(
                querier,
                QueryRoundOutcome(
                    round_id=round_id,
                    responders=(querier, responder),
                    winners=frozenset({querier, responder}),
                    newly_suspected=(),
                    counter_after=0,
                    suspects_after=frozenset(),
                ),
            )


class TestMonitorEpochExclusion:
    def make_monitor(self):
        monitor = MessagePatternMonitor((1, 2, 3, 4), f=1, min_streak=3)
        certify(monitor, responder=2, queriers=(1, 3), rounds=3)
        return monitor

    def test_witness_without_plan(self):
        monitor = self.make_monitor()
        witness = monitor.current_witness()
        assert witness is not None and witness.responder == 2

    def test_plan_excludes_down_responder(self):
        monitor = self.make_monitor()
        plan = FaultPlan.of(recoveries=[RecoveryFault(2, crash=3.0, recover=7.0)])
        assert monitor.current_witness(plan=plan, at=5.0) is None
        assert not monitor.holds(plan=plan, at=5.0)
        # Before the crash and after the recovery, 2 is a valid witness.
        for at in (1.0, 8.0):
            witness = monitor.current_witness(plan=plan, at=at)
            assert witness is not None and witness.responder == 2

    def test_plan_needs_a_clock_or_instant(self):
        monitor = self.make_monitor()
        with pytest.raises(ConfigurationError):
            monitor.current_witness(plan=FaultPlan.none())
