"""Unit tests for the repro.detectors plugin registry."""

import dataclasses

import pytest

from repro.core.classes import FDClass
from repro.detectors import (
    BuiltDetector,
    DetectorContext,
    DetectorMode,
    DetectorSpec,
    all_detectors,
    build_detector,
    detector_keys,
    get_detector,
    register_detector,
    sim_driver_factory,
)
from repro.detectors.registry import _REGISTRY
from repro.errors import ConfigurationError
from repro.sim.node import QueryDetectorCore, TimedProtocolCore

BUILTIN_KEYS = {
    "time-free",
    "partial",
    "heartbeat",
    "heartbeat-adaptive",
    "gossip",
    "phi",
}


def ctx(pid=1, n=4, f=1) -> DetectorContext:
    return DetectorContext(process_id=pid, membership=frozenset(range(1, n + 1)), f=f)


def build_kwargs(key: str, n: int = 4) -> dict:
    """Per-family required knobs (only partial has one)."""
    return {"d": n} if key == "partial" else {}


class TestRegistryLookup:
    def test_all_builtin_families_registered(self):
        assert BUILTIN_KEYS <= set(all_detectors())

    def test_keys_sorted(self):
        assert detector_keys() == sorted(detector_keys())

    def test_get_is_case_insensitive(self):
        assert get_detector("PHI") is get_detector("phi")

    def test_unknown_key_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="unknown detector"):
            get_detector("no-such-detector")

    def test_duplicate_registration_rejected(self):
        spec = get_detector("phi")
        clone = dataclasses.replace(spec)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_detector(clone)

    def test_reregistering_same_spec_is_idempotent(self):
        spec = get_detector("phi")
        assert register_detector(spec) is spec


class TestSpecMetadata:
    @pytest.mark.parametrize("key", sorted(BUILTIN_KEYS))
    def test_spec_shape(self, key):
        spec = all_detectors()[key]
        assert spec.key == key
        assert isinstance(spec.fd_class, FDClass)
        assert spec.mode in (DetectorMode.QUERY, DetectorMode.TIMED)
        assert dataclasses.is_dataclass(spec.params_cls)
        assert spec.summary

    def test_query_families_declare_diamond_s(self):
        for key in ("time-free", "partial"):
            assert all_detectors()[key].fd_class is FDClass.DIAMOND_S

    def test_query_families_carry_pacing_fields(self):
        for key in ("time-free", "partial"):
            names = all_detectors()[key].param_names()
            assert {"grace", "idle", "retry"} <= names

    def test_invalid_spec_key_rejected(self):
        spec = get_detector("phi")
        with pytest.raises(ConfigurationError, match="lower-case"):
            dataclasses.replace(spec, key="PHI")


class TestMakeParams:
    def test_defaults(self):
        params = get_detector("heartbeat").make_params()
        assert params.period == 1.0
        assert params.timeout == 2.0

    def test_overrides(self):
        params = get_detector("phi").make_params(threshold=4.0)
        assert params.threshold == 4.0

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            get_detector("heartbeat").make_params(threshold=4.0)

    def test_params_instance_passthrough(self):
        spec = get_detector("gossip")
        params = spec.params_cls(period=0.5, timeout=1.5)
        assert spec.make_params(params) is params

    def test_wrong_params_type_rejected(self):
        spec = get_detector("gossip")
        other = get_detector("phi").make_params()
        with pytest.raises(ConfigurationError, match="expects"):
            spec.make_params(other)

    def test_instance_plus_overrides_rejected(self):
        spec = get_detector("gossip")
        with pytest.raises(ConfigurationError):
            spec.make_params(spec.params_cls(), period=0.5)


class TestBuild:
    @pytest.mark.parametrize("key", sorted(BUILTIN_KEYS))
    def test_core_matches_declared_mode(self, key):
        built = build_detector(key, ctx(), **build_kwargs(key))
        assert isinstance(built, BuiltDetector)
        assert built.core.process_id == 1
        assert built.core.suspects() == frozenset()
        if built.spec.mode is DetectorMode.QUERY:
            assert isinstance(built.core, QueryDetectorCore)
        else:
            assert isinstance(built.core, TimedProtocolCore)

    def test_partial_requires_d(self):
        with pytest.raises(ConfigurationError, match="range density"):
            build_detector("partial", ctx())

    def test_time_free_with_omega_attaches_elector(self):
        built = build_detector("time-free", ctx(), with_omega=True)
        assert built.elector is not None
        assert built.elector.leader() in built.core.config.membership

    def test_adaptive_heartbeat_flag_wired(self):
        built = build_detector("heartbeat-adaptive", ctx(), timeout_increment=0.25)
        assert built.core.adaptive is True
        assert built.core.timeout_increment == 0.25

    def test_param_passthrough_to_core(self):
        built = build_detector("heartbeat", ctx(), timeout=3.5)
        assert built.core.timeout_of(2) == 3.5


class TestUnifiedFacade:
    @pytest.mark.parametrize("key", sorted(BUILTIN_KEYS))
    def test_every_family_exposes_unified_core(self, key):
        from repro.detectors import DetectorCore

        built = build_detector(key, ctx(), **build_kwargs(key))
        core = built.unified()
        assert isinstance(core, DetectorCore)
        effects = core.start(0.0)
        assert isinstance(effects, list) and effects

    def test_timed_cores_pass_through(self):
        built = build_detector("gossip", ctx())
        assert built.unified() is built.core


class TestSimDriverFactory:
    def test_unknown_params_rejected_at_factory_time(self):
        with pytest.raises(ConfigurationError):
            sim_driver_factory("heartbeat", 1, grace=0.5)

    def test_external_registration_is_sweepable(self):
        """A plugin family registered from outside becomes buildable by key."""

        @dataclasses.dataclass(frozen=True)
        class NullParams:
            pass

        class NullCore:
            def __init__(self, pid):
                self._pid = pid

            @property
            def process_id(self):
                return self._pid

            def start(self, now):
                return []

            def on_message(self, now, sender, message):
                return []

            def on_wakeup(self, now):
                return []

            def next_wakeup(self):
                return None

            def suspects(self):
                return frozenset()

        spec = DetectorSpec(
            key="null-test",
            title="null",
            fd_class=FDClass.DIAMOND_S,
            mode=DetectorMode.TIMED,
            params_cls=NullParams,
            factory=lambda context, params: BuiltDetector(
                spec=None, params=params, core=NullCore(context.process_id)
            ),
        )
        register_detector(spec)
        try:
            built = build_detector("null-test", ctx())
            assert built.core.suspects() == frozenset()
        finally:
            _REGISTRY.pop("null-test", None)
