"""Tests for the behavioral-property oracles (MP, RP, winning ratios)."""

from dataclasses import dataclass

import pytest

from repro.core.properties import (
    find_mp_witness,
    responder_wins_suffix,
    responsive_processes,
    rounds_by_querier,
    winning_ratio,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FakeRound:
    querier: int
    round_id: int
    winners: frozenset


def round_of(querier, round_id, winners):
    return FakeRound(querier, round_id, frozenset(winners))


class TestGrouping:
    def test_rounds_grouped_in_order(self):
        rounds = [
            round_of(1, 1, {1}),
            round_of(2, 1, {2}),
            round_of(1, 2, {1, 3}),
        ]
        grouped = rounds_by_querier(rounds)
        assert [r.round_id for r in grouped[1]] == [1, 2]
        assert [r.round_id for r in grouped[2]] == [1]


class TestSuffixWins:
    def test_wins_last_rounds(self):
        rounds = [round_of(1, i, {1, 9}) for i in range(1, 4)]
        assert responder_wins_suffix(rounds, 9, suffix=3)

    def test_early_loss_is_forgiven(self):
        rounds = [round_of(1, 1, {1})] + [round_of(1, i, {1, 9}) for i in (2, 3)]
        assert responder_wins_suffix(rounds, 9, suffix=2)
        assert not responder_wins_suffix(rounds, 9, suffix=3)

    def test_insufficient_evidence_fails(self):
        rounds = [round_of(1, 1, {1, 9})]
        assert not responder_wins_suffix(rounds, 9, suffix=2)

    def test_suffix_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            responder_wins_suffix([], 9, suffix=0)


class TestMPWitness:
    def test_witness_found_when_one_process_wins_f_plus_one_queriers(self):
        # p9 wins the (only) round of queriers 1, 2 — enough for f = 1.
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(2, 1, {2, 9}),
            round_of(3, 1, {3, 4}),
        ]
        witness = find_mp_witness(rounds, f=1, correct=[1, 2, 3, 4, 9])
        assert witness is not None
        assert witness.responder == 9
        assert witness.queriers >= frozenset({1, 2})

    def test_no_witness_when_wins_are_scattered(self):
        rounds = [
            round_of(1, 1, {1, 5}),
            round_of(2, 1, {2, 6}),
            round_of(3, 1, {3, 7}),
        ]
        # Every responder wins at most its own querier (plus queriers win
        # themselves); f = 2 needs three queriers for one responder.
        assert find_mp_witness(rounds, f=2, correct=[1, 2, 3, 5, 6, 7]) is None

    def test_crashed_candidate_is_not_a_witness(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(2, 1, {2, 9}),
        ]
        witness = find_mp_witness(rounds, f=1, correct=[1, 2])  # 9 crashed
        assert witness is None

    def test_querier_counts_toward_q_for_itself(self):
        # A process always wins its own queries, so with f = 1 a responder
        # that wins one other querier plus itself suffices.
        rounds = [
            round_of(9, 1, {9}),
            round_of(1, 1, {1, 9}),
        ]
        witness = find_mp_witness(rounds, f=1, correct=[1, 9])
        assert witness is not None
        assert witness.responder == 9

    def test_limited_scope_accepts_smaller_querier_sets(self):
        # ◇S_x style: 9 wins only one querier — not enough for f+1 = 3,
        # enough for scope 1.
        rounds = [round_of(1, 1, {1, 9}), round_of(2, 1, {2}), round_of(3, 1, {3})]
        assert find_mp_witness(rounds, f=2, correct=[1, 2, 3, 9]) is None
        witness = find_mp_witness(rounds, f=2, correct=[1, 2, 3, 9], scope=1)
        assert witness is not None
        assert witness.responder == 1  # wins its own query; smallest id

    def test_scope_larger_than_f_plus_one_strengthens(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(2, 1, {2, 9}),
            round_of(3, 1, {3}),
        ]
        assert find_mp_witness(rounds, f=1, correct=[1, 2, 3, 9]) is not None
        assert find_mp_witness(rounds, f=1, correct=[1, 2, 3, 9], scope=3) is None

    def test_scope_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            find_mp_witness([], f=1, correct=[1], scope=0)


class TestResponsiveProcesses:
    def test_globally_winning_process_is_responsive(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(2, 1, {2, 9}),
            round_of(9, 1, {9}),
        ]
        assert 9 in responsive_processes(rounds, correct=[1, 2, 9])

    def test_missing_one_querier_disqualifies(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(2, 1, {2}),
        ]
        assert 9 not in responsive_processes(rounds, correct=[1, 2, 9])

    def test_empty_trace_has_no_responsive_processes(self):
        assert responsive_processes([], correct=[1, 2]) == frozenset()


class TestWinningRatio:
    def test_ratio_over_all_rounds(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(1, 2, {1}),
            round_of(2, 1, {2, 9}),
        ]
        assert winning_ratio(rounds, 9) == pytest.approx(2 / 3)

    def test_ratio_for_single_querier(self):
        rounds = [
            round_of(1, 1, {1, 9}),
            round_of(1, 2, {1}),
            round_of(2, 1, {2, 9}),
        ]
        assert winning_ratio(rounds, 9, querier=1) == pytest.approx(0.5)

    def test_empty_trace_gives_zero(self):
        assert winning_ratio([], 9) == 0.0
