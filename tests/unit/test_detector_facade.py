"""Unit tests for the unified event-in/effects-out facade.

The QueryRoundFacade is driven entirely by hand here — no scheduler, no
driver — which is the point of the facade: task T1's round loop as a pure
state machine whose deadlines are data.
"""

import pytest

from repro.core.effects import Broadcast, SendTo
from repro.core.messages import Query, Response
from repro.core.protocol import DetectorConfig, TimeFreeDetector
from repro.detectors import QueryRoundFacade
from repro.sim.node import QueryPacing


def make_facade(pid=1, n=3, f=1, **pacing_kw):
    config = DetectorConfig.for_process(pid, range(1, n + 1), f)
    detector = TimeFreeDetector(config)
    return QueryRoundFacade(detector, QueryPacing(**pacing_kw))


def respond(facade, sender, round_id):
    return facade.on_message(0.0, sender, Response(sender=sender, round_id=round_id))


class TestRoundLifecycle:
    def test_start_broadcasts_the_query(self):
        facade = make_facade()
        effects = facade.start(0.0)
        assert len(effects) == 1
        assert isinstance(effects[0], Broadcast)
        assert isinstance(effects[0].message, Query)

    def test_no_deadline_before_quorum(self):
        facade = make_facade()  # n=3, f=1 -> quorum 2 (own response counted)
        facade.start(0.0)
        assert facade.next_wakeup() is None

    def test_quorum_arms_the_grace_deadline(self):
        facade = make_facade(grace=0.7)
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        assert facade.next_wakeup() == pytest.approx(0.7)

    def test_grace_wakeup_closes_round_and_restarts(self):
        facade = make_facade(grace=0.5)
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        effects = facade.on_wakeup(0.5)
        # idle=0: the next round's query goes out immediately.
        assert facade.rounds_completed == 1
        assert [type(e) for e in effects] == [Broadcast]
        assert effects[0].message.round_id == 2

    def test_idle_defers_the_next_round(self):
        facade = make_facade(grace=0.5, idle=0.3)
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        assert facade.on_wakeup(0.5) == []
        assert facade.next_wakeup() == pytest.approx(0.8)
        effects = facade.on_wakeup(0.8)
        assert effects and effects[0].message.round_id == 2

    def test_missing_responder_becomes_suspected(self):
        facade = make_facade(grace=0.5)
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        facade.on_wakeup(0.5)
        assert facade.suspects() == frozenset({3})

    def test_round_listener_sees_the_outcome(self):
        facade = make_facade(grace=0.5)
        seen = []
        facade.round_listeners.append(lambda pid, outcome: seen.append((pid, outcome)))
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        facade.on_wakeup(0.5)
        assert len(seen) == 1
        assert seen[0][0] == 1
        assert seen[0][1].round_id == 1
        assert 3 in seen[0][1].suspects_after

    def test_incoming_query_yields_a_response(self):
        facade = make_facade()
        facade.start(0.0)
        query = Query(sender=2, round_id=7, suspected=(), mistakes=())
        effects = facade.on_message(0.0, 2, query)
        assert len(effects) == 1
        assert isinstance(effects[0], SendTo)
        assert effects[0].destination == 2
        assert effects[0].message.round_id == 7

    def test_foreign_message_is_ignored(self):
        facade = make_facade()
        facade.start(0.0)
        assert facade.on_message(0.0, 2, object()) == []


class TestRetry:
    def test_retry_rebroadcasts_below_quorum(self):
        facade = make_facade(n=4, f=1, grace=0.5, retry=0.4)  # quorum 3
        first = facade.start(0.0)
        respond(facade, 2, round_id=1)  # 2 of 3: still below quorum
        assert facade.next_wakeup() == pytest.approx(0.4)
        effects = facade.on_wakeup(0.4)
        assert facade.retries_sent == 1
        assert effects == [first[0]]
        # retry re-arms itself until the quorum lands
        assert facade.next_wakeup() == pytest.approx(0.8)

    def test_quorum_cancels_the_retry(self):
        facade = make_facade(n=4, f=1, grace=0.5, retry=0.4)
        facade.start(0.0)
        respond(facade, 2, round_id=1)
        respond(facade, 3, round_id=1)  # quorum reached
        assert facade.retries_sent == 0
        assert facade.next_wakeup() == pytest.approx(0.5)  # grace, not retry
