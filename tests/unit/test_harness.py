"""Unit tests for the experiment harness (spec, seeding, cache, runner).

The toy grid below lives at module level so its functions are picklable —
the process-pool path is exercised for real with 2 workers.
"""

from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    ResultCache,
    artifact_payload,
    cache_key,
    cell_seed,
    run_cells,
    run_grid,
    write_artifact,
)
from repro.harness.spec import ScenarioSpec, canonical_json
from repro.experiments.report import Table


@dataclass(frozen=True)
class ToyParams:
    xs: tuple[int, ...] = (1, 2, 3)
    scale: int = 10
    seed: int = 1

    @classmethod
    def full(cls) -> "ToyParams":
        return cls(xs=(1, 2, 3, 4, 5))

    @classmethod
    def big(cls) -> "ToyParams":
        return cls(xs=(7, 8), scale=100)

    @classmethod
    def _hidden(cls) -> "ToyParams":
        return cls()

    @classmethod
    def broken(cls) -> int:
        return 42


def toy_cells(params):
    return [{"x": x} for x in params.xs]


def toy_run_cell(params, coords, seed):
    return {"y": coords["x"] * params.scale, "seed": seed, "pair": (1, 2)}


def toy_tabulate(params, values):
    table = Table(title="toy", headers=["x", "y"])
    for x, value in zip(params.xs, values):
        table.add_row(x, value["y"])
    return table


TOY = ScenarioSpec(
    exp_id="toy",
    title="toy grid",
    params_cls=ToyParams,
    cells=toy_cells,
    run_cell=toy_run_cell,
    tabulate=toy_tabulate,
)


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed("t1", {"n": 10}, 1) == cell_seed("t1", {"n": 10}, 1)

    def test_sensitive_to_every_component(self):
        base = cell_seed("t1", {"n": 10}, 1)
        assert cell_seed("t2", {"n": 10}, 1) != base
        assert cell_seed("t1", {"n": 11}, 1) != base
        assert cell_seed("t1", {"n": 10}, 2) != base

    def test_key_order_does_not_matter(self):
        assert cell_seed("t1", {"a": 1, "b": 2}, 1) == cell_seed("t1", {"b": 2, "a": 1}, 1)


class TestCanonicalJson:
    def test_tuples_and_sets_are_normalised(self):
        assert canonical_json((1, 2)) == "[1,2]"
        assert canonical_json(frozenset({2, 1})) == "[1,2]"

    def test_key_order_is_stable(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestRunGrid:
    def test_sequential_evaluation(self):
        result = run_grid(TOY, ToyParams())
        assert [outcome.value["y"] for outcome in result.outcomes] == [10, 20, 30]
        assert result.cache_hits == 0
        assert result.tables()[0].column("y") == [10, 20, 30]

    def test_values_are_json_normalised_even_without_cache(self):
        # Tuples become lists on the computed path too, so cold and cached
        # runs are indistinguishable to tabulate/artifacts.
        result = run_grid(TOY, ToyParams())
        assert result.outcomes[0].value["pair"] == [1, 2]

    def test_parallel_matches_sequential(self):
        sequential = run_grid(TOY, ToyParams())
        parallel = run_grid(TOY, ToyParams(), workers=2)
        assert sequential.values == parallel.values

    def test_per_cell_seeds_differ(self):
        result = run_grid(TOY, ToyParams())
        seeds = [outcome.value["seed"] for outcome in result.outcomes]
        assert len(set(seeds)) == len(seeds)

    def test_run_cells_subset(self):
        values = run_cells(TOY, ToyParams(), [{"x": 3}, {"x": 1}])
        assert [value["y"] for value in values] == [30, 10]

    def test_make_params(self):
        assert TOY.make_params().xs == (1, 2, 3)
        assert TOY.make_params(full=True).xs == (1, 2, 3, 4, 5)
        assert TOY.make_params(seed=9).seed == 9


class TestPresets:
    def test_named_preset_resolves(self):
        assert TOY.make_params(preset="big").xs == (7, 8)
        assert TOY.make_params(preset="full").xs == (1, 2, 3, 4, 5)

    def test_overrides_apply_on_top_of_preset(self):
        params = TOY.make_params(preset="big", seed=9)
        assert params.xs == (7, 8)
        assert params.seed == 9

    def test_full_and_preset_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            TOY.make_params(full=True, preset="big")

    def test_unknown_preset_lists_available(self):
        with pytest.raises(ConfigurationError, match="big"):
            TOY.make_params(preset="huge")

    def test_private_names_are_not_presets(self):
        with pytest.raises(ConfigurationError, match="no preset"):
            TOY.make_params(preset="_hidden")

    def test_preset_returning_wrong_type_is_rejected(self):
        with pytest.raises(ConfigurationError, match="not ToyParams"):
            TOY.make_params(preset="broken")

    def test_presets_listing(self):
        listed = TOY.presets()
        assert "full" in listed and "big" in listed
        assert "_hidden" not in listed

    def test_large_n_presets_registered(self):
        from repro.harness.registry import get_spec

        e1 = get_spec("e1")
        assert "large_n" in e1.presets()
        assert e1.make_params(preset="large_n").n == 2000
        t3 = get_spec("t3")
        assert "large_n" in t3.presets()
        assert max(t3.make_params(preset="large_n").sizes) == 2000


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("toy", ToyParams(), {"x": 1}, 123)
        assert cache.get(key) is None
        cache.put(key, {"y": 10})
        assert cache.get(key) == {"y": 10}
        assert cache.hits == 1 and cache.misses == 1

    def test_key_changes_with_params(self):
        a = cache_key("toy", ToyParams(), {"x": 1}, 123)
        b = cache_key("toy", ToyParams(scale=11), {"x": 1}, 123)
        assert a != b

    def test_grid_run_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_grid(TOY, ToyParams(), cache=cache)
        warm = run_grid(TOY, ToyParams(), cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(warm.outcomes)
        assert cold.values == warm.values

    @pytest.mark.parametrize(
        "garbage",
        ["{not json", '"a bare string"', "[1, 2]", '{"key": "wrong"}', "{}"],
    )
    def test_corrupt_entry_reads_as_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        key = cache_key("toy", ToyParams(), {"x": 1}, 123)
        cache.put(key, {"y": 10})
        path = cache._path(key)
        path.write_text(garbage, encoding="utf-8")
        assert cache.get(key) is None

    def test_entry_with_matching_key_but_no_value_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("toy", ToyParams(), {"x": 1}, 123)
        cache.put(key, {"y": 10})
        cache._path(key).write_text(f'{{"key": "{key}"}}', encoding="utf-8")
        assert cache.get(key) is None


class TestArtifacts:
    def test_payload_shape(self):
        payload = artifact_payload(run_grid(TOY, ToyParams()))
        assert payload["experiment"] == "toy"
        assert len(payload["cells"]) == 3
        assert payload["tables"][0]["headers"] == ["x", "y"]

    def test_byte_identical_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = write_artifact(tmp_path, run_grid(TOY, ToyParams(), cache=cache))
        before = first.read_bytes()
        second = write_artifact(tmp_path, run_grid(TOY, ToyParams(), cache=cache))
        assert second == first
        assert second.read_bytes() == before
        assert first.name == "BENCH_TOY.json"


class TestRegistry:
    def test_all_specs_cover_every_experiment(self):
        from repro.harness import all_specs

        assert sorted(all_specs()) == sorted(
            ["t1", "t2", "t3", "t4", "f1", "f2", "f3", "e1", "e2", "a1", "a2", "q1", "c1"]
        )

    def test_get_spec_rejects_unknown(self):
        from repro.harness import get_spec

        assert get_spec("T1").exp_id == "t1"
        with pytest.raises(ConfigurationError):
            get_spec("zz")
