"""Unit tests for f-covering validation (Menger-based)."""

import pytest

from repro.errors import TopologyError
from repro.partial import (
    independent_path_count,
    validate_f_covering,
    validate_mobility_scenario,
)
from repro.sim.topology import Topology, full_mesh, ring, star


class TestIndependentPaths:
    def test_full_mesh_paths(self):
        topo = full_mesh(range(1, 6))
        assert independent_path_count(topo, 1, 2) == 4

    def test_ring_has_two_paths(self):
        topo = ring(range(1, 7))
        assert independent_path_count(topo, 1, 4) == 2

    def test_star_has_single_path(self):
        topo = star([0, 1, 2, 3])
        assert independent_path_count(topo, 1, 2) == 1


class TestValidateFCovering:
    def test_mesh_is_covering(self):
        validate_f_covering(full_mesh(range(1, 8)), f=2)

    def test_ring_fails_for_f_two(self):
        with pytest.raises(TopologyError, match="not 2-covering"):
            validate_f_covering(ring(range(1, 8)), f=2)

    def test_density_requirement(self):
        # A 3-connected graph whose min degree is exactly f + 1 = 3 fails
        # the density requirement d > f + 1 (d = 4 means degree >= 3... build
        # K4: connectivity 3, degree 3, d = 4; f = 2 -> d > 3 holds).  Use
        # f = 3 on K4: connectivity 3 < 4 -> connectivity error first.
        with pytest.raises(TopologyError):
            validate_f_covering(full_mesh(range(1, 5)), f=3)


class TestMobilityRestriction:
    def build(self):
        # Hub-heavy graph: mover 1 connects to 2 and 3; 2 and 3 are well
        # connected among {2,3,4,5}; d = range_density of graph.
        topo = Topology(
            [1, 2, 3, 4, 5],
            [(1, 2), (1, 3), (2, 3), (2, 4), (2, 5), (3, 4), (3, 5), (4, 5)],
        )
        return topo

    def test_satisfied_restriction_passes(self):
        topo = self.build()
        # d = min degree + 1 = 3 (node 1 has degree 2). d - f = 2 with f=1:
        # neighbors of 1 (2 and 3) keep >= 2 other neighbors each.
        validate_mobility_scenario(topo, mover=1, d=3, f=1)

    def test_starved_neighbor_fails(self):
        topo = Topology([1, 2, 3], [(1, 2), (2, 3)])
        # neighbor 2 of mover 1 keeps only node 3 (1 neighbor) < d - f = 2.
        with pytest.raises(TopologyError, match="could never terminate"):
            validate_mobility_scenario(topo, mover=1, d=3, f=1)
