"""Unit tests for the all-to-all heartbeat baseline (sans-I/O core)."""

import pytest

from repro.baselines.heartbeat import Heartbeat, HeartbeatDetector
from repro.core.effects import Broadcast
from repro.errors import ConfigurationError


def make(pid=1, n=3, **kwargs):
    return HeartbeatDetector(pid, frozenset(range(1, n + 1)), **kwargs)


class TestConfig:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            make(period=0.0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            make(timeout=-1.0)

    def test_name_reflects_adaptivity(self):
        assert make().name == "heartbeat"
        assert make(adaptive=True).name == "heartbeat(adaptive)"


class TestBeats:
    def test_start_broadcasts_first_beat(self):
        detector = make(period=1.0)
        effects = detector.start(0.0)
        assert len(effects) == 1
        assert isinstance(effects[0], Broadcast)
        assert effects[0].message == Heartbeat(sender=1, seq=1)

    def test_beats_are_periodic(self):
        detector = make(period=1.0, timeout=10.0)
        detector.start(0.0)
        assert detector.next_wakeup() == 1.0
        effects = detector.on_wakeup(1.0)
        assert effects[0].message.seq == 2

    def test_wakeup_before_beat_time_sends_nothing(self):
        detector = make(period=1.0, timeout=10.0)
        detector.start(0.0)
        assert detector.on_wakeup(0.5) == []


class TestSuspicion:
    def test_silent_peer_is_suspected_after_timeout(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_message(0.1, 2, Heartbeat(sender=2, seq=1))
        detector.on_wakeup(2.0)  # peer 3 never spoke: deadline was 0 + 2.0
        assert detector.suspects() == frozenset({3})

    def test_heartbeat_refreshes_deadline(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_message(1.9, 2, Heartbeat(sender=2, seq=1))
        detector.on_message(1.9, 3, Heartbeat(sender=3, seq=1))
        detector.on_wakeup(2.5)
        assert detector.suspects() == frozenset()

    def test_late_heartbeat_clears_suspicion(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        assert 2 in detector.suspects()
        detector.on_message(2.5, 2, Heartbeat(sender=2, seq=1))
        assert 2 not in detector.suspects()

    def test_stale_reordered_beat_is_ignored(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_message(0.1, 2, Heartbeat(sender=2, seq=5))
        detector.on_wakeup(2.0)
        suspects_before = detector.suspects()
        # An old datagram (seq 3) arrives after suspicion: must not clear it.
        detector.on_message(2.1, 2, Heartbeat(sender=2, seq=3))
        assert detector.suspects() == suspects_before

    def test_foreign_message_is_ignored(self):
        detector = make()
        detector.start(0.0)
        assert detector.on_message(0.1, 2, object()) == []

    def test_unknown_sender_is_ignored(self):
        detector = make()
        detector.start(0.0)
        assert detector.on_message(0.1, 99, Heartbeat(sender=99, seq=1)) == []


class TestNextWakeup:
    def test_earliest_of_beat_and_deadlines(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        # Next beat at 1.0, deadlines at 2.0 -> beat wins.
        assert detector.next_wakeup() == 1.0

    def test_suspected_peers_do_not_hold_timers(self):
        detector = make(n=2, period=5.0, timeout=2.0)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        assert detector.suspects() == frozenset({2})
        # Only the beat timer remains.
        assert detector.next_wakeup() == 5.0

    def test_not_started_has_no_wakeup(self):
        assert make().next_wakeup() is None


class TestAdaptiveTimeout:
    def test_false_suspicion_grows_timeout(self):
        detector = make(period=1.0, timeout=2.0, adaptive=True, timeout_increment=0.5)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        assert 2 in detector.suspects()
        detector.on_message(2.5, 2, Heartbeat(sender=2, seq=1))
        assert detector.timeout_of(2) == 2.5
        assert detector.timeout_of(3) == 2.0  # per-peer adaptation

    def test_non_adaptive_timeout_is_constant(self):
        detector = make(period=1.0, timeout=2.0, adaptive=False)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        detector.on_message(2.5, 2, Heartbeat(sender=2, seq=1))
        assert detector.timeout_of(2) == 2.0
