"""Unit tests for the lease ledger, identical across both backends.

Every behavioural test is parametrized over :class:`SqliteLedger` and
:class:`FileLedger` — the two must be interchangeable, because which one
a run gets depends only on what the shared filesystem supports.
"""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.harness.lease import (
    FileLedger,
    SqliteLedger,
    detect_backend,
    open_ledger,
)

T0 = 1_000_000.0


@pytest.fixture(params=["sqlite", "file"])
def make_ledger(request, tmp_path):
    """Factory for ledgers sharing one directory (like workers share it)."""

    def factory(total=8):
        return open_ledger(tmp_path / "run", total, request.param)

    factory.backend = request.param
    return factory


class TestClaim:
    def test_claims_lowest_pending_first(self, make_ledger):
        ledger = make_ledger(total=4)
        assert [ledger.claim("w", now=T0) for _ in range(5)] == [0, 1, 2, 3, None]

    def test_live_leases_are_not_reclaimable(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.claim("a", now=T0, ttl=10) == 0
        assert ledger.claim("b", now=T0 + 5) is None

    def test_expired_leases_are_claimable_by_anyone(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.claim("a", now=T0, ttl=10) == 0
        assert ledger.claim("b", now=T0 + 11) == 0

    def test_shard_restricts_claims(self, make_ledger):
        ledger = make_ledger(total=6)
        claimed = [ledger.claim("w2", now=T0, shard=(1, 2)) for _ in range(4)]
        assert claimed == [1, 3, 5, None]

    def test_done_cells_are_never_claimable(self, make_ledger):
        ledger = make_ledger(total=2)
        assert ledger.claim("a", now=T0, ttl=1) == 0
        ledger.complete("a", 0)
        # Even long after the (deleted) lease would have expired.
        assert ledger.claim("b", now=T0 + 100, ttl=1000) == 1
        assert ledger.claim("b", now=T0 + 200) is None


class TestRenewRelease:
    def test_renew_extends_the_deadline(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.claim("a", now=T0, ttl=10) == 0
        assert ledger.renew("a", 0, now=T0 + 8, ttl=10) is True
        # Past the original deadline, before the renewed one.
        assert ledger.claim("b", now=T0 + 15) is None
        assert ledger.claim("b", now=T0 + 19) == 0

    def test_renew_after_steal_reports_loss(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.claim("a", now=T0, ttl=5) == 0
        assert ledger.claim("b", now=T0 + 6, ttl=5) == 0  # b stole it
        assert ledger.renew("a", 0, now=T0 + 7) is False

    def test_renew_unowned_cell_is_false(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.renew("a", 0, now=T0) is False

    def test_release_makes_cell_immediately_claimable(self, make_ledger):
        ledger = make_ledger(total=1)
        assert ledger.claim("a", now=T0, ttl=100) == 0
        ledger.release("a", 0)
        assert ledger.claim("b", now=T0 + 1) == 0


class TestCountsAndReap:
    def test_counts_by_state(self, make_ledger):
        ledger = make_ledger(total=5)
        ledger.claim("a", now=T0, ttl=10)      # 0: live lease
        ledger.claim("a", now=T0, ttl=1)       # 1: will expire
        done = ledger.claim("a", now=T0, ttl=10)  # 2: done
        ledger.complete("a", done)
        counts = ledger.counts(now=T0 + 5)
        assert (counts.total, counts.pending, counts.leased) == (5, 2, 1)
        assert (counts.expired, counts.done) == (1, 1)
        assert counts.remaining == 4
        assert not counts.all_done

    def test_all_done(self, make_ledger):
        ledger = make_ledger(total=2)
        for _ in range(2):
            ledger.complete("a", ledger.claim("a", now=T0))
        assert ledger.counts(now=T0).all_done
        assert ledger.done_indices() == {0, 1}

    def test_reap_resets_only_expired(self, make_ledger):
        ledger = make_ledger(total=3)
        ledger.claim("a", now=T0, ttl=1)    # expires
        ledger.claim("b", now=T0, ttl=100)  # stays live
        assert ledger.reap(now=T0 + 5) == 1
        counts = ledger.counts(now=T0 + 5)
        assert (counts.pending, counts.leased, counts.expired) == (2, 1, 0)

    def test_owners_tally(self, make_ledger):
        ledger = make_ledger(total=4)
        ledger.claim("a", now=T0, ttl=10)
        ledger.claim("a", now=T0, ttl=10)
        ledger.claim("b", now=T0, ttl=10)
        assert ledger.owners(now=T0 + 1) == {"a": 2, "b": 1}


class TestPersistence:
    def test_state_survives_reopen(self, make_ledger):
        first = make_ledger(total=3)
        first.complete("a", first.claim("a", now=T0))
        first.claim("a", now=T0, ttl=1000)
        first.close()
        second = make_ledger(total=3)
        counts = second.counts(now=T0 + 1)
        assert (counts.done, counts.leased, counts.pending) == (1, 1, 1)
        # The reopened ledger claims the remaining pending cell, not the
        # done or leased ones.
        assert second.claim("b", now=T0 + 1) == 2

    def test_concurrent_claimers_never_double_claim(self, make_ledger):
        total = 40
        make_ledger(total=total).close()  # initialise rows once
        per_worker: dict[str, list[int]] = {}

        def worker(name):
            ledger = make_ledger(total=total)
            mine = per_worker.setdefault(name, [])
            while True:
                index = ledger.claim(name, ttl=600)
                if index is None:
                    break
                mine.append(index)
                ledger.complete(name, index)
            ledger.close()

        threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        claimed = [i for mine in per_worker.values() for i in mine]
        assert sorted(claimed) == list(range(total))  # each cell exactly once


class TestBackendSelection:
    def test_detect_backend(self, tmp_path):
        assert detect_backend(tmp_path) is None
        open_ledger(tmp_path / "a", 2, "sqlite").close()
        assert detect_backend(tmp_path / "a") == "sqlite"
        open_ledger(tmp_path / "b", 2, "file").close()
        assert detect_backend(tmp_path / "b") == "file"

    def test_existing_backend_wins_under_auto(self, tmp_path):
        open_ledger(tmp_path, 2, "file").close()
        ledger = open_ledger(tmp_path, 2, "auto")
        assert isinstance(ledger, FileLedger)
        ledger.close()

    def test_conflicting_backend_is_refused(self, tmp_path):
        open_ledger(tmp_path, 2, "file").close()
        with pytest.raises(ConfigurationError, match="uses the 'file' backend"):
            open_ledger(tmp_path, 2, "sqlite")

    def test_auto_prefers_sqlite_on_a_working_filesystem(self, tmp_path):
        ledger = open_ledger(tmp_path, 2, "auto")
        assert isinstance(ledger, SqliteLedger)
        ledger.close()

    def test_unknown_backend_is_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown ledger backend"):
            open_ledger(tmp_path, 2, "paper")
