"""The optional numpy-vectorized latency backend.

Exact-RNG parity with ``random.Random`` is impossible (and explicitly not
promised — the backend is opt-in for that reason), so parity with the
pure-python samplers is asserted *in distribution*: same mean within a
tolerance comfortably above the fixed-seed sampling error, strict
positivity, and the model-specific shape properties (floors, bias
speedups, regime shifts).
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim import latency_numpy
from repro.sim.cluster import SimCluster, heartbeat_driver_factory
from repro.sim.latency import (
    BiasedLatency,
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    PairwiseLatency,
    ParetoLatency,
    RegimeShiftLatency,
    UniformLatency,
)
from repro.sim.latency_numpy import NumpyLatency, numpy_available, vectorize_latency

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed; pure-python fallback covered below"
)

N = 40_000
DSTS = tuple(range(2, 12))  # 10 destinations per sample_many call


def draw_many(model, *, seed=7, now=0.0, rounds=N // len(DSTS)):
    rng = random.Random(seed)
    out = []
    for _ in range(rounds):
        out.extend(model.sample_many(rng, 1, DSTS, now))
    return out


def mean(xs):
    return sum(xs) / len(xs)


PARITY_MODELS = [
    ConstantLatency(0.002, jitter=0.004),
    UniformLatency(0.001, 0.009),
    ExponentialLatency(0.003, floor=0.001),
    LogNormalLatency(0.002, sigma=0.8, floor=0.0005),
    ParetoLatency(0.001, shape=3.0),
]


class TestDistributionParity:
    @pytest.mark.parametrize("model", PARITY_MODELS, ids=lambda m: type(m).__name__)
    def test_mean_matches_python_sampler(self, model):
        vectorized = vectorize_latency(model)
        assert isinstance(vectorized, NumpyLatency)
        python_mean = mean(draw_many(model))
        numpy_mean = mean(draw_many(vectorized))
        # Both fixed-seed sample means must sit near the analytic mean, so
        # they must sit near each other: 5% is ~10 sigma for these sizes.
        assert numpy_mean == pytest.approx(python_mean, rel=0.05)
        assert numpy_mean == pytest.approx(model.mean(), rel=0.05)

    @pytest.mark.parametrize("model", PARITY_MODELS, ids=lambda m: type(m).__name__)
    def test_all_delays_positive(self, model):
        delays = draw_many(vectorize_latency(model), rounds=200)
        assert min(delays) > 0.0

    def test_lognormal_spread_matches(self):
        model = LogNormalLatency(0.002, sigma=1.0)
        py = sorted(draw_many(model))
        np_ = sorted(draw_many(vectorize_latency(model)))
        # Medians agree (the lognormal's defining parameter).
        assert np_[len(np_) // 2] == pytest.approx(py[len(py) // 2], rel=0.08)


class TestWrapperSemantics:
    def test_biased_speedup_applies_to_favored_destinations(self):
        base = ConstantLatency(0.004, jitter=0.0)
        model = BiasedLatency(base, frozenset({3}), speedup=4.0)
        delays = vectorize_latency(model).sample_many(random.Random(1), 1, (2, 3, 4), 0.0)
        assert delays[0] == pytest.approx(0.004)
        assert delays[1] == pytest.approx(0.001)
        assert delays[2] == pytest.approx(0.004)

    def test_biased_favored_sender_accelerates_everything(self):
        base = ConstantLatency(0.004, jitter=0.0)
        model = BiasedLatency(base, frozenset({1}), speedup=2.0)
        delays = vectorize_latency(model).sample_many(random.Random(1), 1, (2, 3), 0.0)
        assert delays == pytest.approx([0.002, 0.002])

    def test_regime_shift_scales_after_the_shift(self):
        base = ConstantLatency(0.002, jitter=0.0)
        model = RegimeShiftLatency(base, shift_at=10.0, factor=5.0)
        vectorized = vectorize_latency(model)
        before = vectorized.sample_many(random.Random(1), 1, (2,), 9.9)
        after = vectorized.sample_many(random.Random(1), 1, (2,), 10.0)
        assert before[0] == pytest.approx(0.002)
        assert after[0] == pytest.approx(0.010)

    def test_single_message_entry_points_delegate_to_base(self):
        model = ExponentialLatency(0.003)
        vectorized = vectorize_latency(model)
        a = model.sample(random.Random(5), 1, 2)
        b = vectorized.sample(random.Random(5), 1, 2)
        assert a == b

    def test_same_seed_draws_identical_sequences(self):
        model = vectorize_latency(ExponentialLatency(0.003))
        assert draw_many(model, rounds=50) == draw_many(model, rounds=50)

    def test_unsupported_model_falls_back_unchanged(self):
        model = PairwiseLatency(ConstantLatency(0.001), {})
        assert vectorize_latency(model) is model

    def test_vectorizing_twice_is_idempotent(self):
        model = vectorize_latency(ExponentialLatency(0.003))
        assert vectorize_latency(model) is model

    def test_fallback_when_numpy_missing(self, monkeypatch):
        monkeypatch.setattr(latency_numpy, "_np", None)
        model = ExponentialLatency(0.003)
        assert vectorize_latency(model) is model
        assert not numpy_available()


class TestClusterOptIn:
    def test_numpy_backend_wraps_the_cluster_latency(self):
        cluster = SimCluster(
            n=5,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ExponentialLatency(0.001),
            seed=3,
            latency_backend="numpy",
        )
        assert isinstance(cluster.latency, NumpyLatency)
        cluster.run(until=5.0)
        assert all(cluster.suspects_of(pid) == frozenset() for pid in range(1, 6))

    def test_default_backend_leaves_the_model_alone(self):
        model = ExponentialLatency(0.001)
        cluster = SimCluster(
            n=3,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=model,
            seed=3,
        )
        assert cluster.latency is model

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SimCluster(
                n=3,
                driver_factory=heartbeat_driver_factory(),
                latency_backend="fortran",
            )
