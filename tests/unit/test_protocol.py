"""Unit tests for the time-free detector state machine (Algorithm 1)."""

import pytest

from repro.core import DetectorConfig, Query, Response
from repro.core.effects import Broadcast, SendTo
from repro.errors import ConfigurationError, MembershipError, ProtocolError

from ..helpers import InstantExchange, make_detectors


class TestDetectorConfig:
    def test_quorum_is_n_minus_f(self):
        config = DetectorConfig.for_process(1, range(1, 6), f=2)
        assert config.n == 5
        assert config.quorum == 3

    def test_f_must_be_less_than_n(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig.for_process(1, [1, 2, 3], f=3)

    def test_f_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig.for_process(1, [1, 2, 3], f=-1)

    def test_process_must_belong_to_membership(self):
        with pytest.raises(MembershipError):
            DetectorConfig.for_process(9, [1, 2, 3], f=1)

    def test_membership_must_not_be_empty(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(process_id=1, membership=frozenset(), f=0)


class TestQueryRound:
    def test_start_round_broadcasts_current_sets(self):
        detectors = make_detectors(3, f=1)
        d1 = detectors[1]
        d1.state.suspected.add(3, 4)
        effect = d1.start_round()
        assert isinstance(effect, Broadcast)
        query = effect.message
        assert isinstance(query, Query)
        assert query.sender == 1
        assert query.round_id == 1
        assert query.suspected == ((3, 4),)
        assert query.mistakes == ()

    def test_own_response_is_accounted_immediately(self):
        d1 = make_detectors(3, f=1)[1]
        d1.start_round()
        # quorum is 2: own response + one more
        assert not d1.quorum_reached()
        d1.on_response(Response(sender=2, round_id=1))
        assert d1.quorum_reached()

    def test_cannot_start_round_while_collecting(self):
        d1 = make_detectors(3, f=1)[1]
        d1.start_round()
        with pytest.raises(ProtocolError):
            d1.start_round()

    def test_cannot_finish_before_quorum(self):
        d1 = make_detectors(4, f=1)[1]  # quorum 3
        d1.start_round()
        d1.on_response(Response(sender=2, round_id=1))
        with pytest.raises(ProtocolError):
            d1.finish_round()

    def test_cannot_finish_without_round(self):
        d1 = make_detectors(3, f=1)[1]
        with pytest.raises(ProtocolError):
            d1.finish_round()

    def test_stale_response_is_ignored(self):
        d1 = make_detectors(3, f=1)[1]
        d1.start_round()
        assert d1.on_response(Response(sender=2, round_id=99)) is False
        assert not d1.quorum_reached()

    def test_duplicate_response_counts_once(self):
        d1 = make_detectors(4, f=1)[1]
        d1.start_round()
        assert d1.on_response(Response(sender=2, round_id=1)) is True
        assert d1.on_response(Response(sender=2, round_id=1)) is False
        assert not d1.quorum_reached()

    def test_round_ids_increase(self):
        detectors = make_detectors(2, f=1)
        exchange = InstantExchange(detectors)
        first = exchange.run_round(1)
        second = exchange.run_round(1)
        assert (first.round_id, second.round_id) == (1, 2)

    def test_missing_processes_become_suspected(self):
        detectors = make_detectors(4, f=2)  # quorum 2
        exchange = InstantExchange(detectors)
        outcome = exchange.run_round(1, responders=[2], receivers=[2])
        assert outcome.newly_suspected == (3, 4)
        assert detectors[1].suspects() == frozenset({3, 4})

    def test_counter_increments_after_round(self):
        detectors = make_detectors(3, f=1)
        exchange = InstantExchange(detectors)
        assert detectors[1].counter == 0
        exchange.run_round(1)
        assert detectors[1].counter == 1

    def test_extra_responses_after_quorum_enlarge_rec_from(self):
        # The evaluation's pacing improvement: replies beyond n - f still
        # count, reducing false suspicions.
        detectors = make_detectors(4, f=2)  # quorum 2
        exchange = InstantExchange(detectors)
        outcome = exchange.run_round(1, responders=[2, 3, 4])
        assert outcome.newly_suspected == ()
        assert set(outcome.responders) == {1, 2, 3, 4}

    def test_winners_are_first_quorum_responders(self):
        detectors = make_detectors(4, f=1)  # quorum 3
        exchange = InstantExchange(detectors)
        outcome = exchange.run_round(1, responders=[3, 2, 4])
        assert outcome.winners == frozenset({1, 3, 2})

    def test_abort_round_allows_restart(self):
        d1 = make_detectors(3, f=1)[1]
        d1.start_round()
        d1.abort_round()
        effect = d1.start_round()
        assert effect.message.round_id == 2


class TestQueryHandling:
    def test_query_is_answered_with_matching_round_id(self):
        detectors = make_detectors(3, f=1)
        query = Query(sender=2, round_id=7, suspected=(), mistakes=())
        effect = detectors[1].on_query(query)
        assert isinstance(effect, SendTo)
        assert effect.destination == 2
        assert effect.message == Response(sender=1, round_id=7)

    def test_own_query_is_ignored(self):
        detectors = make_detectors(3, f=1)
        query = Query(sender=1, round_id=1, suspected=(), mistakes=())
        assert detectors[1].on_query(query) is None

    def test_received_suspicions_are_merged(self):
        detectors = make_detectors(3, f=1)
        query = Query(sender=2, round_id=1, suspected=((3, 5),), mistakes=())
        detectors[1].on_query(query)
        assert detectors[1].suspects() == frozenset({3})

    def test_received_mistakes_are_merged(self):
        detectors = make_detectors(3, f=1)
        detectors[1].state.suspected.add(3, 2)
        query = Query(sender=2, round_id=1, suspected=(), mistakes=((3, 5),))
        detectors[1].on_query(query)
        assert detectors[1].suspects() == frozenset()
        assert detectors[1].mistakes() == frozenset({3})

    def test_being_suspected_triggers_refutation_in_next_query(self):
        detectors = make_detectors(3, f=1)
        accusation = Query(sender=2, round_id=1, suspected=((1, 9),), mistakes=())
        detectors[1].on_query(accusation)
        effect = detectors[1].start_round()
        assert effect.message.mistakes == ((1, 10),)
        assert effect.message.suspected == ()


class TestFigureOneScenario:
    """Re-enactment of the paper's Section 4.4 example (Figure 1).

    Topology specifics aside (the DSN'03 core is fully connected), the
    counter dynamics are identical: two observers suspect a crashed process
    with different counters (5 and 10); propagation must converge on the
    freshest record <A, 10> everywhere.
    """

    def test_freshest_suspicion_wins_everywhere(self):
        detectors = make_detectors(5, f=1)
        a, b, c, d, e = 1, 2, 3, 4, 5
        # Step (b): A fails; B (counter 5) and C (counter 10) notice locally.
        detectors[b].state.counter = 5
        detectors[c].state.counter = 10
        detectors[b].state.suspect_locally(a)
        detectors[c].state.suspect_locally(a)
        exchange = InstantExchange(detectors)
        # Step (c): B and C broadcast their suspicions (A is crashed: it
        # neither receives nor responds).
        exchange.run_round(b, receivers=[c, d, e], responders=[c, d, e])
        exchange.run_round(c, receivers=[b, d, e], responders=[b, d, e])
        # B must have upgraded to C's fresher record; C must have kept 10.
        assert detectors[b].state.suspected.tag_of(a) == 10
        assert detectors[c].state.suspected.tag_of(a) == 10
        # Step (d): one more exchange converges D and E on <A, 10>.
        exchange.run_round(d, receivers=[b, c, e], responders=[b, c, e])
        exchange.run_round(e, receivers=[b, c, d], responders=[b, c, d])
        for pid in (b, c, d, e):
            assert detectors[pid].state.suspected.tag_of(a) == 10
            assert detectors[pid].suspects() == frozenset({a})


class TestCrashRefutationCycle:
    def test_false_suspicion_is_corrected_and_does_not_resurrect(self):
        detectors = make_detectors(3, f=1)
        exchange = InstantExchange(detectors)
        # Process 3 is slow once: its response misses p1's quorum window.
        outcome = exchange.run_round(1, receivers=[2, 3], responders=[2])
        assert outcome.suspects_after == frozenset({3})
        # p1's next query carries the suspicion; p3 refutes it.
        exchange.run_round(1, receivers=[2, 3], responders=[2, 3])
        # p3 broadcasts its mistake; p1 clears the suspicion.
        exchange.run_round(3, receivers=[1, 2], responders=[1, 2])
        assert detectors[1].suspects() == frozenset()
        # The stale suspicion tag must not override the fresher mistake.
        stale = Query(sender=2, round_id=99, suspected=((3, 0),), mistakes=())
        detectors[1].on_query(stale)
        assert detectors[1].suspects() == frozenset()


class TestHotPathCaches:
    """PR 4: cached config sweeps and the allocation-free steady state."""

    def test_members_and_peers_sorted_are_cached_and_correct(self):
        config = DetectorConfig.for_process(2, [3, 1, 2], f=1)
        assert config.members_sorted == tuple(sorted({1, 2, 3}, key=repr))
        assert config.peers_sorted == tuple(
            p for p in config.members_sorted if p != 2
        )
        # Same tuple object on every access: computed once at construction.
        assert config.members_sorted is config.members_sorted
        assert config.peers_sorted is config.peers_sorted

    def test_query_snapshot_is_reused_across_quiet_rounds(self):
        detectors = make_detectors(3, f=2)
        d1 = detectors[1]
        d1.state.suspected.add(3, 1)
        first = d1.start_round().message
        d1.on_response(Response(sender=2, round_id=1))
        d1.on_response(Response(sender=3, round_id=1))
        d1.finish_round()
        second = d1.start_round().message
        # No suspicion churn between rounds: the embedded snapshot tuple is
        # the cached object, not a re-sorted copy.
        assert second.suspected is first.suspected

    def test_steady_state_on_query_allocates_no_merge_results(self, monkeypatch):
        from repro.core import tags

        detectors = make_detectors(4, f=1)
        d1, d2 = detectors[1], detectors[2]
        d1.state.suspected.add(3, 2)
        d1.state.mistakes.add(4, 2)
        d1.state.counter = 5
        d2.state.suspected.add(3, 2)
        d2.state.mistakes.add(4, 2)
        d2.state.counter = 5
        query = d1.start_round().message

        def tripwire(*args, **kwargs):
            raise AssertionError("steady-state on_query allocated a MergeResult")

        monkeypatch.setattr(tags, "MergeResult", tripwire)
        effect = d2.on_query(query)
        assert isinstance(effect, SendTo)
        assert effect.destination == 1

    def test_on_query_merges_batched_like_the_oracle(self):
        # End-to-end sanity: a mixed fresh/stale payload through on_query
        # lands exactly where the per-record oracle puts it.
        detectors = make_detectors(5, f=1)
        d2 = detectors[2]
        d2.state.suspected.add(4, 1)
        query = Query(
            sender=1,
            round_id=1,
            suspected=((3, 7), (4, 1)),   # 3 fresh, 4 stale
            mistakes=((4, 1), (5, 2)),    # 4 ties-beats-suspicion, 5 fresh
        )
        d2.on_query(query)
        assert d2.suspects() == frozenset({3})
        assert d2.mistakes() == frozenset({4, 5})
        assert d2.state.mistakes.tag_of(4) == 1
