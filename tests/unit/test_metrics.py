"""Unit tests for the QoS metrics over hand-built traces."""

import pytest

from repro.errors import ExperimentError
from repro.metrics import (
    accuracy_stabilization,
    all_detection_stats,
    detection_stats,
    false_suspicion_series,
    message_load,
    mistake_stats,
    pair_qos,
)
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.trace import TraceRecorder


def trace_with(observer_events):
    """observer_events: {observer: [(time, suspects_after), ...]}"""
    trace = TraceRecorder()
    for observer, events in observer_events.items():
        previous = frozenset()
        for time, suspects in events:
            suspects = frozenset(suspects)
            trace.record_suspicion_change(time, observer, previous, suspects)
            previous = suspects
    return trace


class TestDetectionStats:
    def test_latencies_per_observer(self):
        trace = trace_with({1: [(12.0, {9})], 2: [(13.5, {9})]})
        stats = detection_stats(trace, crashed=9, crash_time=10.0, observers=[1, 2])
        assert stats.latencies == {1: 2.0, 2: 3.5}
        assert stats.detected_by_all
        assert stats.min_latency == 2.0
        assert stats.mean_latency == pytest.approx(2.75)
        assert stats.max_latency == 3.5

    def test_undetected_observer_is_reported(self):
        trace = trace_with({1: [(12.0, {9})]})
        stats = detection_stats(trace, 9, 10.0, observers=[1, 2])
        assert stats.undetected == frozenset({2})
        assert not stats.detected_by_all

    def test_revoked_suspicion_does_not_count(self):
        trace = trace_with({1: [(12.0, {9}), (13.0, set())]})
        stats = detection_stats(trace, 9, 10.0, observers=[1])
        assert stats.undetected == frozenset({1})

    def test_pre_crash_suspicion_floors_latency_at_zero(self):
        # Observer suspected 9 before it actually crashed and never revoked.
        trace = trace_with({1: [(8.0, {9})]})
        stats = detection_stats(trace, 9, 10.0, observers=[1])
        assert stats.latencies[1] == 0.0

    def test_crashed_observer_is_skipped(self):
        trace = trace_with({1: [(12.0, {9})]})
        stats = detection_stats(trace, 9, 10.0, observers=[1, 9])
        assert 9 not in stats.latencies
        assert 9 not in stats.undetected

    def test_all_detection_stats_covers_every_crash(self):
        trace = trace_with(
            {
                1: [(12.0, {9}), (22.0, {9, 8})],
                8: [(12.5, {9})],
            }
        )
        plan = FaultPlan.of(crashes=[CrashFault(9, 10.0), CrashFault(8, 20.0)])
        stats = all_detection_stats(trace, plan, membership=[1, 8, 9])
        assert len(stats) == 2
        assert stats[0].crashed == 9
        # Only process 1 is correct for the second crash.
        assert set(stats[1].latencies) == {1}


class TestMistakeStats:
    def test_counts_and_durations(self):
        trace = trace_with(
            {
                1: [(1.0, {2}), (3.0, set())],  # one 2-second mistake
                2: [(5.0, {1})],  # open until horizon
            }
        )
        stats = mistake_stats(trace, correct=[1, 2], horizon=10.0)
        assert stats.count == 2
        assert stats.total_duration == pytest.approx(2.0 + 5.0)
        assert stats.mean_duration == pytest.approx(3.5)
        assert stats.unresolved == 1
        assert stats.rate == pytest.approx(0.2)

    def test_crashed_targets_are_excluded(self):
        trace = trace_with({1: [(1.0, {9})]})
        stats = mistake_stats(trace, correct=[1, 2], horizon=10.0)
        assert stats.count == 0

    def test_no_mistakes(self):
        stats = mistake_stats(TraceRecorder(), correct=[1, 2], horizon=10.0)
        assert stats.count == 0
        assert stats.mean_duration is None


class TestPairQoS:
    def test_mistakes_only_before_crash(self):
        trace = trace_with({1: [(1.0, {9}), (2.0, set()), (12.0, {9})]})
        qos = pair_qos(trace, 1, 9, horizon=20.0, crash_time=10.0)
        assert qos.mistake_count == 1
        assert qos.mistake_total_duration == pytest.approx(1.0)
        assert qos.detection_time == pytest.approx(2.0)

    def test_no_crash_means_no_detection_time(self):
        trace = trace_with({1: [(1.0, {9}), (2.0, set())]})
        qos = pair_qos(trace, 1, 9, horizon=20.0)
        assert qos.detection_time is None
        assert qos.mistake_rate == pytest.approx(1 / 20.0)

    def test_query_accuracy_probability(self):
        trace = trace_with({1: [(0.0, {9}), (5.0, set())]})
        qos = pair_qos(trace, 1, 9, horizon=10.0)
        assert qos.query_accuracy_probability == pytest.approx(0.5)

    def test_invalid_horizon(self):
        with pytest.raises(ExperimentError):
            pair_qos(TraceRecorder(), 1, 2, horizon=0.0)


class TestAccuracyStabilization:
    def test_never_suspected_process_stabilizes_at_zero(self):
        trace = trace_with({1: [(1.0, {2})], 2: []})
        result = accuracy_stabilization(trace, correct=[1, 2, 3], horizon=10.0)
        assert result[3] == 0.0

    def test_resolved_suspicion_stabilizes_at_interval_end(self):
        trace = trace_with({1: [(1.0, {2}), (4.0, set())]})
        result = accuracy_stabilization(trace, correct=[1, 2], horizon=10.0)
        assert result[2] == 4.0

    def test_open_suspicion_never_stabilizes(self):
        trace = trace_with({1: [(1.0, {2})]})
        result = accuracy_stabilization(trace, correct=[1, 2], horizon=10.0)
        assert result[2] is None


class TestSeriesAndLoad:
    def test_false_suspicion_series(self):
        trace = trace_with({1: [(5.0, {2}), (8.0, set())]})
        plan = FaultPlan.none()
        series = false_suspicion_series(trace, [4.0, 6.0, 9.0], plan)
        assert series == [(4.0, 0), (6.0, 1), (9.0, 0)]

    def test_series_accounts_for_crashes_becoming_true(self):
        trace = trace_with({1: [(5.0, {2})]})
        plan = FaultPlan.of(crashes=[CrashFault(2, 7.0)])
        series = false_suspicion_series(trace, [6.0, 8.0], plan)
        assert series == [(6.0, 1), (8.0, 0)]

    def test_message_load(self):
        trace = TraceRecorder()
        for _ in range(100):
            trace.record_message("fd.query", 1)
        for _ in range(50):
            trace.record_message("fd.response", 2)
        load = message_load(trace, horizon=10.0, n=5)
        assert load["fd.query"] == pytest.approx(2.0)
        assert load["fd.response"] == pytest.approx(1.0)
        assert load["total"] == pytest.approx(3.0)

    def test_message_load_validation(self):
        with pytest.raises(ExperimentError):
            message_load(TraceRecorder(), horizon=0.0, n=5)
