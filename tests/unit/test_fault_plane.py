"""Unit tests for the fault-injection plane: partitions, loss bursts,
crash-recovery, and dynamic membership, enforced end-to-end through
``SimNetwork`` / ``SimProcess`` / ``SimCluster``."""

import pytest

from repro.sim.cluster import SimCluster, heartbeat_driver_factory, time_free_driver_factory
from repro.sim.engine import Scheduler
from repro.sim.faults import (
    CrashFault,
    FaultPlan,
    JoinFault,
    LeaveFault,
    LossBurst,
    PartitionFault,
    RecoveryFault,
)
from repro.sim.latency import ConstantLatency
from repro.sim.network import SimNetwork
from repro.sim.node import QueryPacing
from repro.sim.rng import RngStreams
from repro.sim.topology import full_mesh


def make_network(n=4, bursts=()):
    scheduler = Scheduler()
    topology = full_mesh(range(1, n + 1))
    network = SimNetwork(
        scheduler,
        topology,
        ConstantLatency(0.001),
        RngStreams(7),
        bursts=tuple(bursts),
    )
    return scheduler, topology, network


class TestNetworkPartition:
    def setup_method(self):
        self.scheduler, self.topology, self.network = make_network()
        self.delivered = []
        for pid in (1, 2, 3, 4):
            self.network.register(
                pid, lambda src, msg, pid=pid: self.delivered.append((src, pid, msg))
            )

    def test_cross_side_send_dropped(self):
        fault = PartitionFault(sides=((1, 2), (3, 4)), start=0.0, end=None)
        self.network.begin_partition(fault)
        assert self.network.send(1, 3, "x") is False
        assert self.network.send(1, 2, "y") is True
        self.scheduler.run(until=1.0)
        assert self.delivered == [(1, 2, "y")]

    def test_heal_restores_all_links(self):
        fault = PartitionFault(sides=((1, 2), (3, 4)), start=0.0, end=None)
        self.network.begin_partition(fault)
        assert self.network.is_separated(1, 3)
        self.network.end_partition(fault)
        assert not self.network.is_separated(1, 3)
        assert self.network.send(1, 3, "x") is True
        self.scheduler.run(until=1.0)
        assert self.delivered == [(1, 3, "x")]

    def test_unlisted_nodes_unaffected(self):
        fault = PartitionFault(sides=((1,), (3,)), start=0.0, end=None)
        self.network.begin_partition(fault)
        # 2 is in no side: it reaches both 1 and 3.
        assert self.network.send(2, 1, "a") is True
        assert self.network.send(2, 3, "b") is True
        assert self.network.send(1, 3, "c") is False

    def test_broadcast_filters_cross_side(self):
        fault = PartitionFault(sides=((1, 2), (3, 4)), start=0.0, end=None)
        self.network.begin_partition(fault)
        sent = self.network.broadcast(1, "q")
        assert sent == 1  # only 2 is same-side
        self.scheduler.run(until=1.0)
        assert self.delivered == [(1, 2, "q")]

    def test_in_flight_message_dies_at_partition_start(self):
        assert self.network.send(1, 3, "x") is True  # in flight, 1ms away
        fault = PartitionFault(sides=((1, 2), (3, 4)), start=0.0, end=None)
        self.network.begin_partition(fault)
        dropped_before = self.network.trace.messages_dropped
        self.scheduler.run(until=1.0)
        assert self.delivered == []
        assert self.network.trace.messages_dropped == dropped_before + 1

    def test_three_sided_partition(self):
        fault = PartitionFault(sides=((1,), (2,), (3, 4)), start=0.0, end=None)
        self.network.begin_partition(fault)
        assert self.network.is_separated(1, 2)
        assert self.network.is_separated(2, 3)
        assert not self.network.is_separated(3, 4)


class TestLossBurst:
    def test_burst_drops_only_inside_window(self):
        burst = LossBurst(start=1.0, end=2.0, rate=1.0)
        scheduler, _topology, network = make_network(bursts=[burst])
        got = []
        for pid in (1, 2, 3, 4):
            network.register(pid, lambda src, msg, pid=pid: got.append(pid))
        assert network.send(1, 2, "before") is True  # t=0 < start
        scheduler.run(until=1.5)  # now inside the window
        assert network.send(1, 2, "during") is False
        scheduler.run(until=2.5)  # window over
        assert network.send(1, 2, "after") is True

    def test_link_scoped_burst(self):
        burst = LossBurst(start=0.0, end=10.0, rate=1.0, links=((1, 2),))
        _scheduler, _topology, network = make_network(bursts=[burst])
        for pid in (1, 2, 3, 4):
            network.register(pid, lambda src, msg: None)
        assert network.send(1, 2, "x") is False  # covered link (either direction)
        assert network.send(2, 1, "x") is False
        assert network.send(1, 3, "x") is True  # uncovered link

    def test_no_burst_stream_without_bursts(self):
        _scheduler, _topology, network = make_network()
        assert network._burst_rng is None


class TestClusterRecovery:
    def run_cluster(self, persistent):
        plan = FaultPlan.of(
            recoveries=[RecoveryFault(2, crash=4.0, recover=8.0, persistent=persistent)]
        )
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        cluster.run(until=20.0)
        return cluster

    @pytest.mark.parametrize("persistent", [False, True])
    def test_process_comes_back(self, persistent):
        cluster = self.run_cluster(persistent)
        process = cluster.processes[2]
        assert process.alive and process.attached
        assert process.incarnation == 1
        assert [e.process for e in cluster.trace.recoveries] == [2]
        assert cluster.trace.recoveries[0].time == 8.0

    def test_volatile_restart_swaps_driver(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(2, crash=4.0, recover=8.0)])
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        original = cluster.drivers[2]
        cluster.run(until=20.0)
        assert cluster.drivers[2] is not original
        assert cluster.processes[2].driver is cluster.drivers[2]

    def test_persistent_restart_keeps_driver(self):
        cluster = self.run_cluster(persistent=True)
        assert cluster.processes[2].driver is cluster.drivers[2]

    @pytest.mark.parametrize("persistent", [False, True])
    def test_peers_unsuspect_after_recovery(self, persistent):
        cluster = self.run_cluster(persistent)
        # During the outage peers suspect 2; after recovery heartbeats
        # resume and the suspicion is withdrawn.
        assert all(2 not in cluster.suspects_of(pid) for pid in (1, 3, 4))

    def test_time_free_recovery(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(2, crash=4.0, recover=8.0)])
        cluster = SimCluster(
            n=4,
            driver_factory=time_free_driver_factory(f=1),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        cluster.run(until=20.0)
        assert cluster.processes[2].alive
        # The recovered node resumes querying: rounds recorded after t=8.
        assert any(
            record.querier == 2 and record.finished_at > 8.0
            for record in cluster.trace.rounds
        )


class TestClusterChurn:
    def test_join_starts_late(self):
        plan = FaultPlan.of(joins=[JoinFault(4, time=5.0)])
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        assert not cluster.processes[4].alive
        cluster.run(until=15.0)
        process = cluster.processes[4]
        assert process.alive and process.attached
        events = [(e.process, e.kind) for e in cluster.trace.membership_events]
        assert (4, "join") in events
        # No message bears 4 as sender before the join instant: its first
        # heartbeat broadcast happens at t >= 5.
        assert cluster.trace.messages_by_sender[4] > 0

    def test_join_rewires_topology(self):
        plan = FaultPlan.of(joins=[JoinFault(4, time=5.0, connect_to=(1, 2))])
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        assert cluster.topology.neighbors(4) == frozenset()
        cluster.run(until=15.0)
        assert cluster.topology.neighbors(4) == frozenset({1, 2})

    def test_leave_is_terminal(self):
        plan = FaultPlan.of(leaves=[LeaveFault(3, time=5.0)])
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        cluster.run(until=15.0)
        process = cluster.processes[3]
        assert not process.alive
        assert cluster.topology.neighbors(3) == frozenset()
        assert (3, "leave") in [
            (e.process, e.kind) for e in cluster.trace.membership_events
        ]
        # Correctness excludes the departed node.
        assert cluster.correct_processes() == frozenset({1, 2, 4})
        # Peers eventually suspect the leaver (correctly, per epoch truth).
        assert all(3 in cluster.suspects_of(pid) for pid in (1, 2, 4))

    def test_partition_stalls_time_free_and_heals(self):
        plan = FaultPlan.of(
            partitions=[PartitionFault(sides=((1, 2), (3, 4)), start=4.0, end=8.0)]
        )
        cluster = SimCluster(
            n=4,
            driver_factory=time_free_driver_factory(f=1, pacing=QueryPacing(retry=1.0)),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        cluster.run(until=20.0)
        # n - f = 3 > 2: no side can reach a quorum during the split, so
        # every round stalls; the retry rebroadcast crosses the healed
        # network and rounds resume.
        assert any(r.finished_at > 8.0 for r in cluster.trace.rounds)
        assert all(not cluster.suspects_of(pid) for pid in (1, 2, 3, 4))

    def test_crash_inside_partition_window(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(4, 5.0)],
            partitions=[PartitionFault(sides=((1, 2), (3, 4)), start=4.0, end=8.0)],
        )
        cluster = SimCluster(
            n=4,
            driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
            latency=ConstantLatency(0.001),
            seed=3,
            fault_plan=plan,
        )
        cluster.run(until=20.0)
        assert all(4 in cluster.suspects_of(pid) for pid in (1, 2, 3))
