"""Codec round-trips and registry behavior for wire messages."""

import dataclasses

import pytest

from repro.core.messages import (
    Query,
    Response,
    decode_message,
    encode_message,
    message_kind,
    register_message,
)
from repro.errors import TransportError


class TestCodec:
    def test_query_round_trip(self):
        query = Query(
            sender=1,
            round_id=42,
            suspected=((2, 5), (3, 9)),
            mistakes=((4, 1),),
        )
        assert decode_message(encode_message(query)) == query

    def test_response_round_trip(self):
        response = Response(sender=7, round_id=3)
        assert decode_message(encode_message(response)) == response

    def test_string_process_ids_round_trip(self):
        query = Query(sender="node-a", round_id=1, suspected=(("node-b", 2),), mistakes=())
        assert decode_message(encode_message(query)) == query

    def test_extra_payload_round_trips(self):
        query = Query(
            sender=1,
            round_id=1,
            suspected=(),
            mistakes=(),
            extra=(("omega.accusations", ((1, 0), (2, 3))),),
        )
        decoded = decode_message(encode_message(query))
        assert decoded.extra_payload() == {"omega.accusations": ((1, 0), (2, 3))}

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b'{"kind":"no.such.kind"}')

    def test_malformed_payload_is_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b"not json at all")

    def test_missing_field_is_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b'{"kind":"fd.response","sender":1}')

    def test_payload_without_kind_is_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b'{"sender":1}')

    def test_unregistered_message_cannot_be_encoded(self):
        @dataclasses.dataclass(frozen=True)
        class NotRegistered:
            x: int

        with pytest.raises(TransportError):
            encode_message(NotRegistered(1))


class TestRegistry:
    def test_message_kind_lookup(self):
        assert message_kind(Response(sender=1, round_id=1)) == "fd.response"

    def test_duplicate_kind_is_rejected(self):
        with pytest.raises(ValueError):

            @register_message("fd.query")
            @dataclasses.dataclass(frozen=True)
            class Clash:
                x: int

    def test_non_dataclass_is_rejected(self):
        with pytest.raises(TypeError):

            @register_message("bogus.kind")
            class NotADataclass:
                pass

    def test_reregistering_same_class_is_idempotent(self):
        # Simulates a module reload: same class object, same kind.
        assert register_message("fd.query")(Query) is Query
