"""The legacy DetectorSetup surface keeps working over the registry shim.

DetectorSetup predates repro.detectors; existing call sites —
``DetectorSetup(kind=...)`` with any knob combination, the
TIME_FREE/HEARTBEAT/GOSSIP/PHI presets, ``with_()`` chains — must behave
exactly as before the registry rewire.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    GOSSIP,
    HEARTBEAT,
    PHI,
    TIME_FREE,
    DetectorSetup,
    run_scenario,
    setup_for,
)
from repro.sim.cluster import SimCluster
from repro.sim.node import QueryResponseDriver, TimedDriver


def driver_of(setup: DetectorSetup, n=5, f=1):
    cluster = SimCluster(n=n, driver_factory=setup.driver_factory(f))
    return cluster.drivers[1]


class TestPresets:
    def test_preset_kinds_and_labels_unchanged(self):
        assert (TIME_FREE.kind, TIME_FREE.label) == ("time-free", "time-free (async)")
        assert (HEARTBEAT.kind, HEARTBEAT.label) == ("heartbeat", "heartbeat Θ=2s")
        assert (GOSSIP.kind, GOSSIP.label) == ("gossip", "gossip FT Θ=2s")
        assert (PHI.kind, PHI.label) == ("phi", "phi-accrual")

    def test_preset_timing_knobs_unchanged(self):
        assert TIME_FREE.grace == 1.0
        assert (HEARTBEAT.period, HEARTBEAT.timeout) == (1.0, 2.0)
        assert (GOSSIP.period, GOSSIP.timeout) == (1.0, 2.0)
        assert (PHI.period, PHI.phi_threshold) == (1.0, 8.0)

    def test_with_returns_modified_copy(self):
        tweaked = HEARTBEAT.with_(timeout=3.0, label="slow")
        assert (tweaked.timeout, tweaked.label) == (3.0, "slow")
        assert HEARTBEAT.timeout == 2.0


class TestDriverFactoryCompat:
    def test_time_free_builds_query_driver(self):
        driver = driver_of(TIME_FREE)
        assert isinstance(driver, QueryResponseDriver)
        assert driver.pacing.grace == 1.0
        assert driver.elector is None

    def test_with_omega_attaches_elector(self):
        driver = driver_of(TIME_FREE.with_(with_omega=True))
        assert driver.elector is not None

    def test_heartbeat_builds_timed_driver_with_knobs(self):
        driver = driver_of(HEARTBEAT.with_(timeout=3.0))
        assert isinstance(driver, TimedDriver)
        assert driver.core.timeout_of(2) == 3.0
        assert driver.core.adaptive is False

    def test_adaptive_heartbeat_kind(self):
        driver = driver_of(DetectorSetup(kind="heartbeat-adaptive", timeout_increment=0.1))
        assert driver.core.adaptive is True
        assert driver.core.timeout_increment == 0.1

    def test_gossip_and_phi_kinds(self):
        assert driver_of(GOSSIP).core.name == "gossip-heartbeat"
        assert driver_of(PHI.with_(phi_threshold=5.0)).core.threshold == 5.0

    def test_partial_kind_builds_query_driver(self):
        driver = driver_of(DetectorSetup(kind="partial", d=5))
        assert isinstance(driver, QueryResponseDriver)

    def test_partial_without_d_raises(self):
        with pytest.raises(ConfigurationError, match="needs the parameter"):
            DetectorSetup(kind="partial").driver_factory(1)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError, match="unknown detector"):
            DetectorSetup(kind="carrier-pigeon").driver_factory(1)

    def test_retry_knob_reaches_the_driver(self):
        driver = driver_of(TIME_FREE.with_(retry=0.5))
        assert driver.pacing.retry == 0.5


class TestSetupFor:
    def test_known_keys_resolve_to_presets(self):
        assert setup_for("time-free") is TIME_FREE
        assert setup_for("heartbeat") is HEARTBEAT
        assert setup_for("gossip") is GOSSIP
        assert setup_for("phi") is PHI

    def test_setups_pass_through(self):
        tweaked = PHI.with_(phi_threshold=4.0)
        assert setup_for(tweaked) is tweaked

    def test_other_registered_keys_get_default_setups(self):
        setup = setup_for("heartbeat-adaptive")
        assert setup.kind == "heartbeat-adaptive"
        assert setup.label == "heartbeat-adaptive"

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError, match="unknown detector"):
            setup_for("carrier-pigeon")

    def test_run_scenario_accepts_plain_keys(self):
        cluster = run_scenario(setup="heartbeat", f=1, n=4, horizon=3.0)
        assert cluster.suspects_of(1) == frozenset()
