"""Unit tests for SimCluster assembly, fault wiring and relocation."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import ConstantLatency, QueryPacing, SimCluster
from repro.sim.cluster import time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan, MobilityFault
from repro.sim.topology import Topology, full_mesh


def factory():
    return time_free_driver_factory(1, QueryPacing(grace=0.05))


class TestConstruction:
    def test_needs_exactly_one_of_n_or_topology(self):
        with pytest.raises(ConfigurationError):
            SimCluster(driver_factory=factory())
        with pytest.raises(ConfigurationError):
            SimCluster(n=3, topology=full_mesh([1, 2, 3]), driver_factory=factory())

    def test_membership_comes_from_topology(self):
        cluster = SimCluster(topology=full_mesh([5, 6, 7]), driver_factory=factory())
        assert cluster.membership == frozenset({5, 6, 7})

    def test_negative_stagger_rejected(self):
        with pytest.raises(ConfigurationError):
            SimCluster(n=3, driver_factory=factory(), start_stagger=-1.0)

    def test_fault_plan_must_name_members(self):
        plan = FaultPlan.of(crashes=[CrashFault(99, 1.0)])
        with pytest.raises(ConfigurationError):
            SimCluster(n=3, driver_factory=factory(), fault_plan=plan)

    def test_default_latency_is_one_millisecond(self):
        cluster = SimCluster(n=3, driver_factory=factory())
        assert isinstance(cluster.latency, ConstantLatency)
        assert cluster.latency.delay == pytest.approx(0.001)


class TestFaultWiring:
    def test_crash_is_scheduled(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0)])
        cluster = SimCluster(n=3, driver_factory=factory(), fault_plan=plan)
        cluster.run(until=2.0)
        assert not cluster.processes[2].alive
        assert cluster.trace.crash_time_of(2) == 1.0

    def test_mobility_is_scheduled(self):
        plan = FaultPlan.of(moves=[MobilityFault(2, depart=1.0, arrive=2.0)])
        cluster = SimCluster(n=3, driver_factory=factory(), fault_plan=plan)
        cluster.run(until=1.5)
        assert not cluster.processes[2].attached
        cluster.run(until=2.5)
        assert cluster.processes[2].attached
        kinds = [(e.kind, e.time) for e in cluster.trace.mobility]
        assert kinds == [("detach", 1.0), ("attach", 2.0)]

    def test_never_returning_mover_stays_detached(self):
        plan = FaultPlan.of(moves=[MobilityFault(2, depart=1.0, arrive=None)])
        cluster = SimCluster(n=3, driver_factory=factory(), fault_plan=plan)
        cluster.run(until=10.0)
        assert not cluster.processes[2].attached
        assert cluster.processes[2].alive  # moving, not crashed

    def test_correct_processes_excludes_crashed(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 0.5)])
        cluster = SimCluster(n=4, driver_factory=factory(), fault_plan=plan)
        assert cluster.correct_processes() == frozenset({1, 2, 4})


class TestRelocation:
    def geometric_topology(self):
        positions = {
            1: (0.0, 0.0),
            2: (5.0, 0.0),
            3: (10.0, 0.0),
            4: (50.0, 0.0),
            5: (55.0, 0.0),
        }
        topo = Topology(positions.keys(), positions=positions)
        for a, b in ((1, 2), (2, 3), (1, 3), (4, 5)):
            topo.add_edge(a, b)
        return topo

    def test_relocation_rewires_edges_by_range(self):
        plan = FaultPlan.of(
            moves=[MobilityFault(1, depart=1.0, arrive=2.0, new_position=(52.0, 0.0))]
        )
        cluster = SimCluster(
            topology=self.geometric_topology(), driver_factory=factory(), fault_plan=plan
        )
        cluster.run(until=3.0)
        # Range inferred from the longest existing edge (10 units: 1-3).
        assert cluster.topology.neighbors(1) == frozenset({4, 5})
        assert 1 not in cluster.topology.neighbors(2)

    def test_relocation_without_positions_fails(self):
        plan = FaultPlan.of(
            moves=[MobilityFault(2, depart=1.0, arrive=2.0, new_position=(1.0, 1.0))]
        )
        cluster = SimCluster(n=3, driver_factory=factory(), fault_plan=plan)
        with pytest.raises(SimulationError):
            cluster.run(until=3.0)


class TestElectorDiscovery:
    def test_clusters_without_omega_have_no_electors(self):
        cluster = SimCluster(n=3, driver_factory=factory())
        assert cluster.electors() == {}

    def test_with_omega_every_node_has_an_elector(self):
        cluster = SimCluster(
            n=3,
            driver_factory=time_free_driver_factory(
                1, QueryPacing(grace=0.05), with_omega=True
            ),
        )
        assert set(cluster.electors()) == cluster.membership
