"""Unit tests for process id and membership helpers."""

import pytest

from repro.errors import ConfigurationError, MembershipError
from repro.ids import coordinator_of_round, make_membership, validate_membership


class TestMakeMembership:
    def test_canonical_range(self):
        assert make_membership(3) == (1, 2, 3)

    def test_custom_start(self):
        assert make_membership(2, start=10) == (10, 11)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            make_membership(0)


class TestValidateMembership:
    def test_returns_frozenset(self):
        members = validate_membership([1, 2, 3])
        assert members == frozenset({1, 2, 3})

    def test_member_check(self):
        with pytest.raises(MembershipError):
            validate_membership([1, 2], process_id=3)

    def test_f_bounds(self):
        validate_membership([1, 2, 3], f=2)
        with pytest.raises(ConfigurationError):
            validate_membership([1, 2, 3], f=3)
        with pytest.raises(ConfigurationError):
            validate_membership([1, 2, 3], f=-1)

    def test_empty_membership(self):
        with pytest.raises(ConfigurationError):
            validate_membership([])


class TestCoordinatorRotation:
    def test_rotates_in_sorted_order(self):
        members = [3, 1, 2]
        assert coordinator_of_round(1, members) == 1
        assert coordinator_of_round(2, members) == 2
        assert coordinator_of_round(3, members) == 3
        assert coordinator_of_round(4, members) == 1

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError):
            coordinator_of_round(0, [1, 2])

    def test_string_ids(self):
        assert coordinator_of_round(1, ["b", "a"]) == "a"

    def test_empty_membership(self):
        with pytest.raises(ConfigurationError):
            coordinator_of_round(1, [])
