"""Failure-detector class taxonomy tests."""

from repro.core.classes import Accuracy, Completeness, FDClass, is_reducible_to


class TestTaxonomy:
    def test_diamond_s_properties(self):
        assert FDClass.DIAMOND_S.completeness is Completeness.STRONG
        assert FDClass.DIAMOND_S.accuracy is Accuracy.EVENTUAL_WEAK

    def test_perfect_detector_properties(self):
        assert FDClass.P.completeness is Completeness.STRONG
        assert FDClass.P.accuracy is Accuracy.PERPETUAL_STRONG

    def test_omega_has_no_completeness_accuracy_split(self):
        assert FDClass.OMEGA.completeness is None
        assert FDClass.OMEGA.accuracy is None


class TestReducibility:
    def test_p_is_strongest(self):
        for target in FDClass:
            assert is_reducible_to(FDClass.P, target)

    def test_diamond_s_cannot_emulate_perpetual_classes(self):
        assert not is_reducible_to(FDClass.DIAMOND_S, FDClass.P)
        assert not is_reducible_to(FDClass.DIAMOND_S, FDClass.S)
        assert not is_reducible_to(FDClass.DIAMOND_S, FDClass.DIAMOND_P)

    def test_diamond_s_omega_equivalence(self):
        assert is_reducible_to(FDClass.DIAMOND_S, FDClass.OMEGA)
        assert is_reducible_to(FDClass.OMEGA, FDClass.DIAMOND_S)

    def test_every_class_emulates_itself(self):
        for cls in FDClass:
            assert is_reducible_to(cls, cls)

    def test_s_emulates_diamond_s_but_not_diamond_p(self):
        assert is_reducible_to(FDClass.S, FDClass.DIAMOND_S)
        assert not is_reducible_to(FDClass.S, FDClass.DIAMOND_P)
