"""Test suite package.

The ``__init__`` files make ``tests`` a real package so modules can use
relative imports of the shared :mod:`tests.helpers` (``from ..helpers
import ...``) under pytest's default import mode.
"""
