"""Regenerate the committed golden artifacts: ``python -m tests.goldens.regenerate``.

Runs every golden experiment on its smoke params (sequentially, no cache)
and rewrites ``tests/goldens/BENCH_<ID>.json``.  Only run this when an
experiment's behaviour deliberately changes — the point of the goldens is
to catch *accidental* changes, so a diff here should always be explained
in the commit that regenerates them.
"""

from __future__ import annotations

import sys
import time

from repro.harness import run_grid, write_artifact
from repro.harness.registry import get_spec

from . import (
    CHAOS_PRESETS,
    CONSENSUS_PRESETS,
    GOLDEN_DIR,
    GOLDEN_EXPERIMENTS,
    chaos_params,
    consensus_params,
    smoke_params,
)


def main() -> int:
    params_by_id = smoke_params()
    for exp_id in GOLDEN_EXPERIMENTS:
        started = time.perf_counter()
        result = run_grid(get_spec(exp_id), params_by_id[exp_id])
        path = write_artifact(GOLDEN_DIR, result)
        print(f"{exp_id}: {len(result.outcomes)} cells "
              f"in {time.perf_counter() - started:.1f}s -> {path}")
    chaos = chaos_params()
    for preset in CHAOS_PRESETS:
        started = time.perf_counter()
        result = run_grid(get_spec("q1"), chaos[preset])
        out_dir = GOLDEN_DIR / "chaos" / preset
        out_dir.mkdir(parents=True, exist_ok=True)
        path = write_artifact(out_dir, result)
        print(f"q1[{preset}]: {len(result.outcomes)} cells "
              f"in {time.perf_counter() - started:.1f}s -> {path}")
    consensus = consensus_params()
    for preset in CONSENSUS_PRESETS:
        started = time.perf_counter()
        result = run_grid(get_spec("c1"), consensus[preset])
        out_dir = GOLDEN_DIR / "consensus" / preset
        out_dir.mkdir(parents=True, exist_ok=True)
        path = write_artifact(out_dir, result)
        print(f"c1[{preset}]: {len(result.outcomes)} cells "
              f"in {time.perf_counter() - started:.1f}s -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
