"""Smoke-sized parameterisations and committed golden artifacts.

One params instance per experiment, small enough that the whole set runs
in well under a minute, large enough that every table keeps its shape
(multiple detectors, multiple stress points, at least one crash where the
experiment has one).  The committed ``BENCH_<ID>.json`` files in this
directory were produced by :mod:`tests.goldens.regenerate` and pin the
experiments' artifacts byte-for-byte: any refactor of the experiment API
must reproduce them exactly (same cell ordering, same per-cell seeds,
same table text).

Regenerate (only when an experiment's *behaviour* deliberately changes)::

    python -m tests.goldens.regenerate
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: every registered experiment is pinned by a committed golden
GOLDEN_EXPERIMENTS = (
    "t1", "t2", "t3", "t4", "f1", "f2", "f3", "e1", "e2", "a1", "a2", "q1", "c1",
)


def smoke_params():
    """exp_id -> smoke-sized params instance, for every registered experiment."""
    from repro.experiments import (
        a1_grace_ablation,
        a2_loss_resilience,
        c1_consensus_qos,
        e1_density,
        e2_mobility,
        f1_detection_cdf,
        f2_delay_variance,
        f3_mp_sensitivity,
        q1_qos_comparison,
        t1_detection_vs_n,
        t2_impact_of_f,
        t3_message_load,
        t4_consensus,
    )

    return {
        "t1": t1_detection_vs_n.T1Params(
            sizes=(6,), trials=1, horizon=12.0, crash_at=4.0
        ),
        "t2": t2_impact_of_f.T2Params(
            n=8, f_values=(1, 3), horizon=12.0, crash_at=4.0
        ),
        "t3": t3_message_load.T3Params(sizes=(6,), horizon=8.0),
        "t4": t4_consensus.T4Params(n=5, f=2, horizon=30.0),
        "f1": f1_detection_cdf.F1Params(
            n=8, f=2, trials=2, horizon=14.0, crash_at=5.0
        ),
        "f2": f2_delay_variance.F2Params(
            n=8, f=2, horizon=25.0, shift_factors=(1.0, 50.0), sigmas=(0.5,)
        ),
        "f3": f3_mp_sensitivity.F3Params(
            n=8, f=3, horizon=10.0, speedups=(8.0, 0.5)
        ),
        "e1": e1_density.E1Params(
            n=30, f=2, densities=(6,), crashes=2,
            horizon=25.0, crash_window=(4.0, 10.0),
        ),
        "e2": e2_mobility.E2Params(
            n=22, depart=20.0, arrive=50.0, horizon=90.0, sample_step=5.0
        ),
        "a1": a1_grace_ablation.A1Params(
            n=8, f=2, graces=(0.0, 0.5), horizon=12.0, crash_at=4.0
        ),
        "a2": a2_loss_resilience.A2Params(
            n=8, f=2, loss_rates=(0.0, 0.3), horizon=20.0, crash_at=6.0
        ),
        "q1": q1_qos_comparison.Q1Params(
            n=8, f=2, trials=1, crash_at=5.0, horizon=15.0
        ),
        "c1": c1_consensus_qos.C1Params(
            n=8, f=2, horizon=15.0, instances=3, instance_gap=2.5,
            faults=("coordcrash", "partition"),
        ),
    }


#: q1 stress presets pinned by chaos goldens (one per new fault kind);
#: artifacts live at ``chaos/<preset>/BENCH_Q1.json``
CHAOS_PRESETS = ("partition", "crashrec", "churn", "lossburst")


def chaos_params():
    """preset name -> smoke-sized q1 params with that fault scenario."""
    from repro.experiments import q1_qos_comparison

    return {
        preset: q1_qos_comparison.Q1Params(
            n=8, f=2, trials=1, crash_at=5.0, horizon=15.0, faults=(preset,)
        )
        for preset in CHAOS_PRESETS
    }


#: c1 consensus-workload presets pinned by per-scenario goldens;
#: artifacts live at ``consensus/<preset>/BENCH_C1.json``
CONSENSUS_PRESETS = ("coordcrash", "partition", "crashrec", "churn", "lossburst")


def consensus_params():
    """preset name -> smoke-sized c1 params with that fault scenario."""
    from repro.experiments import c1_consensus_qos

    return {
        preset: c1_consensus_qos.C1Params(
            n=8, f=2, horizon=15.0, instances=3, instance_gap=2.5, faults=(preset,)
        )
        for preset in CONSENSUS_PRESETS
    }
