"""Out-of-tree experiment plugin used by the distributed-grid tests.

Imported two ways, mirroring real plugin deployments:

* in-process, via the ``zz_experiment`` fixture (which also un-registers
  the experiment afterwards so the registry stays at its built-in set
  for every other test);
* in worker subprocesses, via ``REPRO_PLUGINS=tests.grid_plugin`` — the
  loader path a remote worker actually takes, exercised end-to-end by
  the SIGKILL/resume test.

The experiment itself is deliberately boring: ``cells`` independent
cells whose value is a pure function of the seed, with an optional
per-cell ``sleep`` so tests can hold a worker *inside* a cell long
enough to SIGKILL it mid-lease.  The value never depends on the sleep,
so interrupted and uninterrupted runs are byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.api import (
    ExperimentSpec,
    Metric,
    TrialAxis,
    register_experiment,
)
from repro.experiments.report import Table

__all__ = ["ZzParams", "SPEC", "run_cell", "tabulate"]


@dataclass(frozen=True)
class ZzParams:
    cells: int = 6
    #: seconds each cell blocks before returning (timing only, never value)
    sleep: float = 0.0
    seed: int = 1

    @classmethod
    def full(cls) -> "ZzParams":
        return cls(cells=12)


def run_cell(params: ZzParams, coords: dict, seed: int) -> dict:
    if params.sleep:
        time.sleep(params.sleep)
    return {"value": (seed ^ coords["cell"]) % 997}


def tabulate(params: ZzParams, values) -> Table:
    table = Table(title=f"ZZ: plugin smoke ({params.cells} cells)",
                  headers=["cell", "value"])
    for index, value in enumerate(values):
        table.add_row(index, value["value"])
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="zz",
        title="plugin demo: sleepy deterministic cells",
        params_cls=ZzParams,
        axes=(TrialAxis(name="cell", field="cells"),),
        metrics=(Metric("value", "seed-derived token (sleep-independent)"),),
        run_cell=run_cell,
        tabulate=tabulate,
    )
)
