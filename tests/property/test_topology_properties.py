"""Property-based tests of the f-covering topology construction.

The extension's completeness proof assumes the network survives any f node
removals connected (Remark 1 / Menger).  We verify the *construction*
actually delivers that, across random seeds — by removing adversarially
chosen node subsets, not just trusting the connectivity number.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.topology import manet_topology


def survives_removals(topology, f) -> bool:
    """Exhaustively (for small f) check connectivity after f removals.

    Menger guarantees it iff node connectivity >= f + 1; this checks the
    semantics directly on the most articulated candidates plus random
    subsets, keeping runtime bounded.
    """
    ids = sorted(topology.ids())
    by_degree = sorted(ids, key=topology.degree)[: f + 4]
    candidates = list(itertools.combinations(by_degree, f))
    rng = random.Random(0)
    for _ in range(20):
        candidates.append(tuple(rng.sample(ids, f)))
    for removed in candidates:
        remaining = [pid for pid in ids if pid not in removed]
        seen = {remaining[0]}
        frontier = [remaining[0]]
        removed_set = set(removed)
        while frontier:
            node = frontier.pop()
            for nbr in topology.neighbors(node):
                if nbr in removed_set or nbr in seen:
                    continue
                seen.add(nbr)
                frontier.append(nbr)
        if len(seen) != len(remaining):
            return False
    return True


class TestManetCovering:
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        f=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=15, deadline=None)
    def test_construction_is_f_covering(self, seed, f):
        topology = manet_topology(25, f=f, rng=random.Random(seed))
        assert topology.range_density() > f + 1
        assert survives_removals(topology, f)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=10, deadline=None)
    def test_density_floor_is_respected(self, seed):
        topology = manet_topology(
            30, f=1, rng=random.Random(seed), min_neighbors=6
        )
        assert topology.range_density() >= 7

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=10, deadline=None)
    def test_edges_are_symmetric(self, seed):
        # Ranges are symmetric (Definition 1).
        topology = manet_topology(20, f=1, rng=random.Random(seed))
        for a in topology.ids():
            for b in topology.neighbors(a):
                assert a in topology.neighbors(b)
