"""Random operation sequences against the detector cores.

Hypothesis drives each sans-I/O core through arbitrary (legal) event
interleavings — queries with random record payloads, responses with random
round ids, round starts/finishes, wakeups — and checks the invariants that
no interleaving may break.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gossip import GossipHeartbeat, GossipHeartbeatDetector
from repro.baselines.heartbeat import Heartbeat, HeartbeatDetector
from repro.core.messages import Query, Response
from repro.partial import PartialDetectorConfig, PartialTimeFreeDetector

PIDS = st.integers(min_value=2, max_value=9)
TAGS = st.integers(min_value=0, max_value=15)
RECORDS = st.lists(st.tuples(PIDS, TAGS), max_size=4, unique_by=lambda r: r[0]).map(tuple)

PARTIAL_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), PIDS, RECORDS, RECORDS),
        st.tuples(st.just("response"), PIDS, st.integers(min_value=1, max_value=5), st.just(())),
        st.tuples(st.just("cycle"), st.just(0), st.just(()), st.just(())),
    ),
    max_size=40,
)


def drive_partial(detector, operations):
    for op, pid, a, b in operations:
        if op == "query":
            detector.on_query(Query(sender=pid, round_id=1, suspected=a, mistakes=b))
        elif op == "response":
            if detector.collecting:
                detector.on_response(Response(sender=pid, round_id=a))
        elif op == "cycle":
            if not detector.collecting:
                detector.start_round()
            if detector.quorum_reached():
                detector.finish_round()


class TestPartialDetectorInvariants:
    @given(operations=PARTIAL_OPS)
    @settings(max_examples=150, deadline=None)
    def test_state_invariants(self, operations):
        detector = PartialTimeFreeDetector(
            PartialDetectorConfig(process_id=1, range_density=3, f=1)
        )
        drive_partial(detector, operations)
        assert detector.state.invariant_violations() == []

    @given(operations=PARTIAL_OPS)
    @settings(max_examples=100, deadline=None)
    def test_never_knows_or_suspects_itself(self, operations):
        detector = PartialTimeFreeDetector(
            PartialDetectorConfig(process_id=1, range_density=3, f=1)
        )
        drive_partial(detector, operations)
        assert 1 not in detector.known()
        assert 1 not in detector.suspects()

    @given(operations=PARTIAL_OPS)
    @settings(max_examples=100, deadline=None)
    def test_mobility_rule_only_shrinks_known_to_heard_senders(self, operations):
        # Every member of `known` was, at some point, a query sender.
        detector = PartialTimeFreeDetector(
            PartialDetectorConfig(process_id=1, range_density=3, f=1)
        )
        senders = {pid for op, pid, *_ in operations if op == "query"}
        drive_partial(detector, operations)
        assert detector.known() <= senders


TIMED_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("beat"), PIDS, st.integers(min_value=1, max_value=30)),
        st.tuples(st.just("wakeup"), st.just(0), st.just(0)),
        st.tuples(st.just("sleep"), st.just(0), st.integers(min_value=1, max_value=20)),
    ),
    max_size=40,
)


class TestHeartbeatInvariants:
    @given(events=TIMED_EVENTS)
    @settings(max_examples=150, deadline=None)
    def test_suspects_are_always_known_peers(self, events):
        detector = HeartbeatDetector(1, frozenset(range(1, 6)), period=1.0, timeout=2.0)
        now = 0.0
        detector.start(now)
        for kind, pid, value in events:
            if kind == "beat":
                detector.on_message(now, pid, Heartbeat(sender=pid, seq=value))
            elif kind == "wakeup":
                detector.on_wakeup(now)
            elif kind == "sleep":
                now += value / 10.0
        assert detector.suspects() <= frozenset({2, 3, 4, 5})
        assert 1 not in detector.suspects()

    @given(events=TIMED_EVENTS)
    @settings(max_examples=100, deadline=None)
    def test_next_wakeup_never_none_after_start(self, events):
        # The beat timer always exists, so a started detector always has a
        # wakeup scheduled (it must keep emitting beats).
        detector = HeartbeatDetector(1, frozenset(range(1, 6)), period=1.0, timeout=2.0)
        now = 0.0
        detector.start(now)
        for kind, pid, value in events:
            if kind == "beat":
                detector.on_message(now, pid, Heartbeat(sender=pid, seq=value))
            elif kind == "wakeup":
                detector.on_wakeup(now)
            elif kind == "sleep":
                now += value / 10.0
            assert detector.next_wakeup() is not None


class TestGossipInvariants:
    @given(
        vectors=st.lists(
            st.tuples(PIDS, RECORDS),
            max_size=25,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_vector_entries_never_decrease(self, vectors):
        detector = GossipHeartbeatDetector(
            1, frozenset(range(1, 10)), period=1.0, timeout=2.0
        )
        detector.start(0.0)
        floor = detector.heartbeat_vector()
        now = 0.0
        for sender, vector in vectors:
            now += 0.1
            detector.on_message(now, sender, GossipHeartbeat(sender=sender, vector=vector))
            current = detector.heartbeat_vector()
            for pid, value in floor.items():
                assert current[pid] >= value
            floor = current

    @given(
        vectors=st.lists(st.tuples(PIDS, RECORDS), max_size=25),
        wake_at=st.floats(min_value=2.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_own_entry_only_grows_through_own_beats(self, vectors, wake_at):
        detector = GossipHeartbeatDetector(
            1, frozenset(range(1, 10)), period=1.0, timeout=2.0
        )
        detector.start(0.0)
        own_before = detector.heartbeat_vector()[1]
        for sender, vector in vectors:
            detector.on_message(1.0, sender, GossipHeartbeat(sender=sender, vector=vector))
        assert detector.heartbeat_vector()[1] == own_before
