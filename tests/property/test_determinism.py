"""Simulator determinism: same seed in, identical trace out.

Reproducibility is the simulator's core contract — every experiment table
in EXPERIMENTS.md depends on it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import LogNormalLatency, QueryPacing, SimCluster
from repro.sim.cluster import heartbeat_driver_factory, time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan


def run_once(seed, n, f, crash_time, *, detector="time-free", horizon=6.0):
    if detector == "time-free":
        factory = time_free_driver_factory(f, QueryPacing(grace=0.05))
    else:
        factory = heartbeat_driver_factory(period=0.3, timeout=0.7)
    cluster = SimCluster(
        n=n,
        driver_factory=factory,
        latency=LogNormalLatency(0.002, 1.0),
        seed=seed,
        fault_plan=FaultPlan.of(crashes=[CrashFault(n, crash_time)]),
        start_stagger=0.1,
    )
    cluster.run(until=horizon)
    return cluster


def trace_fingerprint(cluster):
    trace = cluster.trace
    return (
        tuple(trace.suspicion_changes),
        tuple(trace.rounds),
        trace.messages_total,
        tuple(sorted(trace.messages_by_kind.items())),
    )


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=3, max_value=7),
        crash_time=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_time_free_trace_is_reproducible(self, seed, n, crash_time):
        f = max(1, n // 3)
        first = run_once(seed, n, f, crash_time)
        second = run_once(seed, n, f, crash_time)
        assert trace_fingerprint(first) == trace_fingerprint(second)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_heartbeat_trace_is_reproducible(self, seed):
        first = run_once(seed, 5, 1, 1.0, detector="heartbeat")
        second = run_once(seed, 5, 1, 1.0, detector="heartbeat")
        assert trace_fingerprint(first) == trace_fingerprint(second)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        other=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=5, deadline=None)
    def test_different_seeds_give_different_message_timings(self, seed, other):
        if seed == other:
            return
        first = run_once(seed, 5, 1, 1.0)
        second = run_once(other, 5, 1, 1.0)
        # Suspicion *logic* may coincide, but the exact round timings of a
        # seeded lognormal delay model essentially never do.
        assert trace_fingerprint(first) != trace_fingerprint(second)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_final_suspect_sets_are_reproducible(self, seed):
        first = run_once(seed, 6, 2, 1.5)
        second = run_once(seed, 6, 2, 1.5)
        for pid in first.membership:
            if pid in first.correct_processes():
                assert first.suspects_of(pid) == second.suspects_of(pid)
