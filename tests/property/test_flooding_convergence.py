"""Lemma 1 as a property test: freshest-record convergence.

The propagation lemma says: if a correct process holds the most recent
status record about some process, then (absent newer information) every
correct process eventually holds exactly that record.  We materialise the
lemma: hypothesis scatters arbitrary counter-tagged suspicion/mistake
records about *phantom* subjects (ids outside the membership, so no round
logic interferes) across a full-mesh system, the exchange runs query
rounds until a fixpoint, and every detector must converge on the unique
globally-freshest record per subject — ties resolved mistake-over-
suspicion, exactly as the proof stipulates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetectorConfig, TimeFreeDetector

from ..helpers import InstantExchange

#: Subjects deliberately outside the membership id range.
SUBJECTS = st.sampled_from([101, 102, 103])
KINDS = st.sampled_from(["suspicion", "mistake"])
TAGS = st.integers(min_value=0, max_value=20)

RECORDS = st.lists(
    st.tuples(SUBJECTS, KINDS, TAGS, st.integers(min_value=0, max_value=4)),
    min_size=1,
    max_size=12,
)


def build_system(n):
    membership = frozenset(range(1, n + 1))
    detectors = {
        pid: TimeFreeDetector(DetectorConfig(process_id=pid, membership=membership, f=1))
        for pid in sorted(membership)
    }
    return detectors


def seed_records(detectors, records, n):
    for subject, kind, tag, holder_index in records:
        holder = detectors[(holder_index % n) + 1]
        if kind == "suspicion":
            holder.state.merge_remote_suspicion(subject, tag)
        else:
            holder.state.merge_remote_mistake(subject, tag)


def expected_winner(records_for_subject):
    """The record that must win: max tag, mistakes beating tied suspicions."""
    best_tag = max(tag for _kind, tag in records_for_subject)
    kinds_at_best = {kind for kind, tag in records_for_subject if tag == best_tag}
    kind = "mistake" if "mistake" in kinds_at_best else "suspicion"
    return kind, best_tag


def run_to_fixpoint(exchange, detectors, max_sweeps=10):
    def snapshot():
        return {
            pid: (d.state.suspected.snapshot(), d.state.mistakes.snapshot())
            for pid, d in detectors.items()
        }

    before = snapshot()
    for _ in range(max_sweeps):
        for pid in sorted(detectors):
            exchange.run_round(pid)
        after = snapshot()
        if after == before:
            return
        before = after
    raise AssertionError("gossip did not reach a fixpoint")


class TestFloodingConvergence:
    @given(n=st.integers(min_value=3, max_value=5), records=RECORDS)
    @settings(max_examples=60, deadline=None)
    def test_everyone_converges_on_the_freshest_record(self, n, records):
        detectors = build_system(n)
        seed_records(detectors, records, n)
        exchange = InstantExchange(detectors)
        run_to_fixpoint(exchange, detectors)
        by_subject: dict = {}
        for subject, kind, tag, _holder in records:
            by_subject.setdefault(subject, []).append((kind, tag))
        for subject, subject_records in by_subject.items():
            kind, tag = expected_winner(subject_records)
            for pid, detector in detectors.items():
                if kind == "suspicion":
                    assert detector.state.suspected.tag_of(subject) == tag, (
                        f"{pid} disagrees on suspicion of {subject}"
                    )
                    assert subject not in detector.state.mistakes
                else:
                    assert detector.state.mistakes.tag_of(subject) == tag, (
                        f"{pid} disagrees on mistake of {subject}"
                    )
                    assert subject not in detector.state.suspected

    @given(n=st.integers(min_value=3, max_value=5), records=RECORDS)
    @settings(max_examples=30, deadline=None)
    def test_fixpoint_states_are_identical_across_processes(self, n, records):
        detectors = build_system(n)
        seed_records(detectors, records, n)
        exchange = InstantExchange(detectors)
        run_to_fixpoint(exchange, detectors)
        states = {
            (d.state.suspected.snapshot(), d.state.mistakes.snapshot())
            for d in detectors.values()
        }
        assert len(states) == 1
