"""The columnar trace store pinned to the object recorder, its oracle.

``TraceRecorder(backend="object")`` is the audited reference implementation
kept for differential debugging (see docs/trace.md) — the same pattern as
the scheduler's heap backend in ``test_wheel_vs_heap``.  Hypothesis drives
both backends through identical operation scripts — interleaved
``record_suspicion_change`` appends (including *inconsistent* jumps whose
``before`` is not the previous ``after``, which force checkpoints in the
columnar store), wholesale ``suspicion_changes`` / ``rounds`` list
replacement with test-authored literals (overlapping added/removed sets,
delta-inconsistent ``suspects`` snapshots), in-place truncation of a held
view list, and round records — and every query observable must match:
``suspicion_changes``, ``changes_of``, ``suspects_at``, ``targets_of``,
``first_suspicion_time`` (several ``after`` cuts), ``permanent_suspicion_time``,
``suspicion_intervals``, ``false_suspicion_count_at``, ``rounds`` and
``rounds_of``.

Scripts keep times globally non-decreasing — that is the recording
contract both stores bisect under; unsorted hand-built lists have no
defined query semantics on either backend.

Checkpoint intervals of 1/2/64 run the same scripts so both the
"checkpoint at every record" and "long delta replay" extremes are
exercised against the oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import RoundRecord, SuspicionChange, TraceRecorder

OBSERVERS = tuple(range(1, 6))
TARGETS = tuple(range(1, 9))

_SET = st.frozensets(st.sampled_from(TARGETS), max_size=4)
_DT = st.sampled_from((0.0, 0.25, 1.0))

_OPS = st.lists(
    st.one_of(
        # append via the recording path: before is the tracked current set
        st.tuples(st.just("record"), st.sampled_from(OBSERVERS), _DT, _SET),
        # inconsistent jump: arbitrary before, exercises forced checkpoints
        st.tuples(st.just("jump"), st.sampled_from(OBSERVERS), _DT, _SET, _SET),
        # wholesale replacement with literal (possibly delta-inconsistent,
        # possibly added/removed-overlapping) changes
        st.tuples(
            st.just("replace"),
            st.lists(
                st.tuples(st.sampled_from(OBSERVERS), _DT, _SET, _SET, _SET),
                max_size=6,
            ),
        ),
        # in-place truncation of the held view list
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=16)),
        st.tuples(
            st.just("round"),
            st.sampled_from(OBSERVERS),
            _DT,
            st.lists(st.sampled_from(TARGETS), max_size=3),
            _SET,
        ),
        st.tuples(
            st.just("replace_rounds"),
            st.lists(
                st.tuples(
                    st.sampled_from(OBSERVERS),
                    _DT,
                    st.lists(st.sampled_from(TARGETS), max_size=3),
                ),
                max_size=4,
            ),
        ),
    ),
    min_size=1,
    max_size=20,
)


def _apply(trace: TraceRecorder, ops) -> None:
    """Drive one recorder through an operation script."""
    now = 0.0
    current: dict[int, frozenset] = {pid: frozenset() for pid in OBSERVERS}
    round_id = 0
    for op in ops:
        kind = op[0]
        if kind == "record":
            _, observer, dt, after = op
            now += dt
            trace.record_suspicion_change(now, observer, current[observer], after)
            current[observer] = after
        elif kind == "jump":
            _, observer, dt, before, after = op
            now += dt
            trace.record_suspicion_change(now, observer, before, after)
            current[observer] = after
        elif kind == "replace":
            _, rows = op
            changes = []
            t = 0.0
            for observer, dt, added, removed, suspects in rows:
                t += dt
                changes.append(
                    SuspicionChange(
                        time=t,
                        observer=observer,
                        added=added,
                        removed=removed,
                        suspects=suspects,
                    )
                )
            trace.suspicion_changes = changes
            now = max(now, t)
            current = {pid: frozenset() for pid in OBSERVERS}
            for change in changes:
                current[change.observer] = change.suspects
        elif kind == "truncate":
            _, keep = op
            view = trace.suspicion_changes
            del view[keep:]
            current = {pid: frozenset() for pid in OBSERVERS}
            for change in view:
                current[change.observer] = change.suspects
        elif kind == "round":
            _, querier, dt, responders, winners = op
            now += dt
            round_id += 1
            trace.record_round(
                RoundRecord(
                    querier=querier,
                    round_id=round_id,
                    started_at=now,
                    quorum_at=now + 0.1,
                    finished_at=now + 0.2,
                    responders=tuple(responders),
                    winners=frozenset(winners),
                )
            )
        elif kind == "replace_rounds":
            _, rows = op
            rounds = []
            t = 0.0
            for querier, dt, responders in rows:
                t += dt
                rounds.append(
                    RoundRecord(
                        querier=querier,
                        round_id=len(rounds),
                        started_at=t,
                        quorum_at=t,
                        finished_at=t + 0.5,
                        responders=tuple(responders),
                        winners=frozenset(responders),
                    )
                )
            trace.rounds = rounds


def _observe(trace: TraceRecorder) -> list:
    """Every query observable, in a comparable structure."""
    times = (0.0, 0.1, 0.75, 2.0, 5.0, 100.0)
    out: list = [list(trace.suspicion_changes), list(trace.rounds)]
    for observer in OBSERVERS:
        out.append(trace.changes_of(observer))
        out.append(trace.targets_of(observer))
        out.append(trace.rounds_of(observer))
        out.append([trace.suspects_at(observer, t) for t in times])
        for target in TARGETS:
            out.append(
                [
                    trace.first_suspicion_time(observer, target),
                    trace.first_suspicion_time(observer, target, after=0.5),
                    trace.first_suspicion_time(observer, target, after=3.0),
                    trace.permanent_suspicion_time(observer, target),
                    trace.suspicion_intervals(observer, target, horizon=100.0),
                ]
            )
    for t in times:
        out.append(trace.false_suspicion_count_at(t, frozenset()))
        out.append(trace.false_suspicion_count_at(t, frozenset({1, 3})))
    return out


@settings(max_examples=120, deadline=None)
@given(ops=_OPS, interval=st.sampled_from((1, 2, 64)))
def test_columnar_matches_object_oracle(ops, interval):
    columnar = TraceRecorder(backend="columnar", checkpoint_interval=interval)
    oracle = TraceRecorder(backend="object")
    _apply(columnar, ops)
    _apply(oracle, ops)
    assert _observe(columnar) == _observe(oracle)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, interval=st.sampled_from((1, 2, 64)))
def test_columnar_view_survives_reobservation(ops, interval):
    """Observing twice (views materialized, caches warm) changes nothing."""
    columnar = TraceRecorder(backend="columnar", checkpoint_interval=interval)
    oracle = TraceRecorder(backend="object")
    _apply(columnar, ops)
    _apply(oracle, ops)
    first = _observe(columnar)
    assert _observe(columnar) == first == _observe(oracle)
