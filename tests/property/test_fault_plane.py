"""Property tests for the fault plane.

Hypothesis generates random (but valid-by-construction) interleavings of
crashes, crash-recovery windows, partitions/heals and membership churn,
then checks:

* **Backend equality** — the same plan driven through a full cluster run
  produces identical observables under the columnar and object trace
  backends (the object store is the audited oracle, as in
  ``test_trace_backends``).
* **Epoch ground truth** — a process is never alive and down at the same
  instant: ``alive_intervals`` and ``down_intervals`` are disjoint and
  together tile ``[0, horizon)``; incarnations are monotone.
* **Heals restore the pre-partition link set** — partitions never mutate
  the topology, so after every active partition ends, the reachable pair
  set is exactly the baseline, whatever the begin/end interleaving.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cluster import SimCluster, heartbeat_driver_factory
from repro.sim.engine import Scheduler
from repro.sim.faults import (
    CrashFault,
    FaultPlan,
    JoinFault,
    LeaveFault,
    PartitionFault,
    RecoveryFault,
)
from repro.sim.latency import ConstantLatency
from repro.sim.network import SimNetwork
from repro.sim.rng import RngStreams
from repro.sim.topology import full_mesh

MEMBERS = (1, 2, 3, 4, 5)
HORIZON = 8.0

# Fault instants on a 0.25s lattice strictly inside the horizon: keeps the
# schedules readable in falsifying examples and avoids float-roundoff
# interval edge cases that the unit suite covers explicitly.
_T = st.integers(min_value=1, max_value=int(HORIZON * 4) - 1).map(lambda i: i / 4.0)


@st.composite
def fault_plans(draw):
    """A valid FaultPlan over MEMBERS with disjoint per-process roles."""
    order = draw(st.permutations(MEMBERS))
    kinds = draw(
        st.lists(
            st.sampled_from(("recovery", "recovery2", "crash", "leave", "join")),
            max_size=4,
            unique=True,
        )
    )
    crashes, recoveries, joins, leaves = [], [], [], []
    for pid, kind in zip(order, kinds):
        if kind == "recovery":
            lo, hi = sorted(draw(st.lists(_T, min_size=2, max_size=2, unique=True)))
            persistent = draw(st.booleans())
            recoveries.append(
                RecoveryFault(pid, crash=lo, recover=hi, persistent=persistent)
            )
        elif kind == "recovery2":
            ts = sorted(draw(st.lists(_T, min_size=4, max_size=4, unique=True)))
            recoveries.append(RecoveryFault(pid, crash=ts[0], recover=ts[1]))
            recoveries.append(RecoveryFault(pid, crash=ts[2], recover=ts[3]))
        elif kind == "crash":
            crashes.append(CrashFault(pid, draw(_T)))
        elif kind == "leave":
            leaves.append(LeaveFault(pid, draw(_T)))
        elif kind == "join":
            joins.append(JoinFault(pid, draw(_T)))
    partitions = []
    if draw(st.booleans()):
        side = draw(st.frozensets(st.sampled_from(MEMBERS), min_size=1, max_size=4))
        rest = tuple(sorted(set(MEMBERS) - side))
        if rest:
            lo, hi = sorted(draw(st.lists(_T, min_size=2, max_size=2, unique=True)))
            partitions.append(
                PartitionFault(sides=(tuple(sorted(side)), rest), start=lo, end=hi)
            )
    return FaultPlan.of(
        crashes=crashes,
        recoveries=recoveries,
        joins=joins,
        leaves=leaves,
        partitions=partitions,
    )


# -- epoch ground truth -----------------------------------------------------

_INSTANTS = [i / 8.0 for i in range(0, int(HORIZON * 8) + 1)]


@settings(max_examples=150, deadline=None)
@given(plan=fault_plans())
def test_alive_and_down_tile_the_horizon(plan):
    for pid in MEMBERS:
        down = plan.down_intervals(pid, horizon=HORIZON)
        alive = plan.alive_intervals(pid, horizon=HORIZON)
        pieces = sorted(down + alive)
        # Non-empty, start at 0, end at the horizon, abut exactly: together
        # they tile [0, horizon) with no overlap and no gap.
        assert pieces[0][0] == 0.0
        assert pieces[-1][1] == HORIZON
        for (_, prev_end), (cur_start, _) in zip(pieces, pieces[1:]):
            assert prev_end == cur_start
        for t in _INSTANTS:
            in_down = any(start <= t < end for start, end in down)
            if t < HORIZON:
                assert plan.alive_at(pid, t) != in_down


@settings(max_examples=150, deadline=None)
@given(plan=fault_plans())
def test_incarnations_are_monotone(plan):
    for pid in MEMBERS:
        incarnations = [plan.incarnation_of(pid, t) for t in _INSTANTS]
        assert incarnations == sorted(incarnations)
        assert incarnations[0] >= 0


@settings(max_examples=150, deadline=None)
@given(plan=fault_plans())
def test_down_at_matches_interval_membership(plan):
    for t in _INSTANTS[:-1]:
        down = plan.down_at(t)
        for pid in MEMBERS:
            in_down = any(
                start <= t < end
                for start, end in plan.down_intervals(pid, horizon=HORIZON)
            )
            assert (pid in down) == in_down


# -- heals restore the pre-partition link set -------------------------------


@settings(max_examples=100, deadline=None)
@given(
    splits=st.lists(
        st.tuples(
            st.frozensets(st.sampled_from(MEMBERS), min_size=1, max_size=4),
            st.booleans(),  # heal this partition again?
        ),
        min_size=1,
        max_size=3,
    )
)
def test_heal_restores_pre_partition_links(splits):
    network = SimNetwork(
        Scheduler(), full_mesh(MEMBERS), ConstantLatency(0.001), RngStreams(1)
    )

    def reachable():
        return frozenset(
            (a, b)
            for a, b in itertools.permutations(MEMBERS, 2)
            if not network.is_separated(a, b)
        )

    baseline = reachable()
    active = []
    for side, heal in splits:
        rest = tuple(sorted(set(MEMBERS) - side))
        if not rest:
            continue
        fault = PartitionFault(
            sides=(tuple(sorted(side)), rest), start=0.0, end=None
        )
        network.begin_partition(fault)
        cross = frozenset(
            (a, b)
            for a, b in itertools.permutations(MEMBERS, 2)
            if (a in side) != (b in side)
        )
        assert reachable().isdisjoint(cross)
        if heal:
            network.end_partition(fault)
        else:
            active.append(fault)
    for fault in active:
        network.end_partition(fault)
    assert reachable() == baseline


# -- backend equality under fault interleavings -----------------------------


def _run(plan, backend, seed):
    cluster = SimCluster(
        n=len(MEMBERS),
        driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
        latency=ConstantLatency(0.001),
        seed=seed,
        fault_plan=plan,
        trace_backend=backend,
    )
    cluster.run(until=HORIZON)
    trace = cluster.trace
    return [
        list(trace.suspicion_changes),
        list(trace.rounds),
        [(e.time, e.process, e.incarnation) for e in trace.recoveries],
        [(e.time, e.process, e.kind) for e in trace.membership_events],
        dict(trace.messages_by_sender),
        trace.messages_dropped,
        {pid: cluster.suspects_of(pid) for pid in MEMBERS},
        {pid: cluster.processes[pid].incarnation for pid in MEMBERS},
    ]


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=1, max_value=2**16))
def test_trace_backends_agree_under_faults(plan, seed):
    assert _run(plan, "columnar", seed) == _run(plan, "object", seed)
