"""Property-based round-trip tests of the wire codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.gossip import GossipHeartbeat
from repro.baselines.heartbeat import Heartbeat
from repro.consensus.messages import Ack, Decide, Estimate, Nack, Proposal
from repro.core.messages import Query, Response, decode_message, encode_message

PIDS = st.one_of(st.integers(min_value=0, max_value=1_000), st.text(min_size=1, max_size=8))
TAG_RECORDS = st.lists(
    st.tuples(PIDS, st.integers(min_value=0, max_value=10_000)),
    max_size=8,
    unique_by=lambda record: record[0],
).map(tuple)
VALUES = st.one_of(st.integers(), st.text(max_size=20), st.booleans(), st.none())


def roundtrips(message) -> bool:
    return decode_message(encode_message(message)) == message


class TestDetectorMessages:
    @given(sender=PIDS, round_id=st.integers(min_value=1), suspected=TAG_RECORDS, mistakes=TAG_RECORDS)
    def test_query_roundtrip(self, sender, round_id, suspected, mistakes):
        assert roundtrips(
            Query(sender=sender, round_id=round_id, suspected=suspected, mistakes=mistakes)
        )

    @given(sender=PIDS, round_id=st.integers(min_value=1))
    def test_response_roundtrip(self, sender, round_id):
        assert roundtrips(Response(sender=sender, round_id=round_id))

    @given(
        sender=PIDS,
        round_id=st.integers(min_value=1),
        accusations=TAG_RECORDS,
    )
    def test_query_with_piggyback_roundtrip(self, sender, round_id, accusations):
        query = Query(
            sender=sender,
            round_id=round_id,
            suspected=(),
            mistakes=(),
            extra=(("omega.accusations", accusations),),
        )
        assert roundtrips(query)


class TestBaselineMessages:
    @given(sender=PIDS, seq=st.integers(min_value=0))
    def test_heartbeat_roundtrip(self, sender, seq):
        assert roundtrips(Heartbeat(sender=sender, seq=seq))

    @given(sender=PIDS, vector=TAG_RECORDS)
    def test_gossip_roundtrip(self, sender, vector):
        assert roundtrips(GossipHeartbeat(sender=sender, vector=vector))


class TestConsensusMessages:
    @given(sender=PIDS, round=st.integers(min_value=1), value=VALUES, ts=st.integers(min_value=0))
    def test_estimate_roundtrip(self, sender, round, value, ts):
        assert roundtrips(Estimate(sender=sender, round=round, value=value, ts=ts))

    @given(sender=PIDS, round=st.integers(min_value=1), value=VALUES)
    def test_proposal_roundtrip(self, sender, round, value):
        assert roundtrips(Proposal(sender=sender, round=round, value=value))

    @given(sender=PIDS, round=st.integers(min_value=1))
    def test_ack_nack_roundtrip(self, sender, round):
        assert roundtrips(Ack(sender=sender, round=round))
        assert roundtrips(Nack(sender=sender, round=round))

    @given(sender=PIDS, value=VALUES)
    def test_decide_roundtrip(self, sender, value):
        assert roundtrips(Decide(sender=sender, value=value))
