"""The timer wheel pinned to the heap backend, its behavioural oracle.

``Scheduler(backend="heap")`` is the audited reference implementation kept
for differential debugging (see docs/engine.md).  Hypothesis drives both
backends through identical operation scripts — interleaved ``schedule_at``
/ ``schedule_after`` / ``schedule_batch`` / ``cancel`` / ``run`` calls,
including zero-delay rescheduling chains, mid-callback cancellations, and
``max_events``-truncated run segments — and every observable must match:
the fire sequence (tag and clock stamp), each ``run`` call's return value,
and the clock trajectory between segments.

Two invariants get dedicated suites on top of the oracle comparison:

* same-tick ordering — events inside one wheel slot fire in exact
  ``(time, seq)`` order, so batching never reorders ties;
* ``max_events`` breaks leave ``now`` monotone and never past a pending
  event (the PR 3 heap regression, generalised to both backends).

The zero-allocation tripwire at the bottom reads the module-global
``_EVENTS_CREATED`` counter around a steady-state run: once the freelist
is warm, re-arming timers and rescheduling chains must create no new
``_Event`` objects at all.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import engine
from repro.sim.engine import Scheduler

# -- operation scripts ----------------------------------------------------

#: offset magnitudes chosen to exercise every tier: sub-quantum ties
#: (1e-4 < 2**-10), level-0 slots (1e-2), level-1 blocks (1.0–70.0), and
#: the sorted spill list (beyond the ~64 s two-level span).
_SCALES = (1e-4, 1e-2, 1.0, 70.0, 300.0)

_OFFSETS = st.tuples(
    st.integers(min_value=0, max_value=9), st.sampled_from(_SCALES)
).map(lambda pair: pair[0] * pair[1])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("at"), _OFFSETS),
        st.tuples(st.just("after"), _OFFSETS),
        st.tuples(st.just("batch"), st.lists(_OFFSETS, min_size=1, max_size=6)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=512)),
        # chain: a callback that re-arms itself `repeats` times with
        # `delay` (zero-delay chains re-enter the slot being drained).
        st.tuples(
            st.just("chain"),
            _OFFSETS,
            st.integers(min_value=1, max_value=4),
            st.sampled_from((0.0, 1e-4, 1e-2, 1.5)),
        ),
        # cancel_in: a callback that cancels an earlier handle mid-drain.
        st.tuples(st.just("cancel_in"), _OFFSETS, st.integers(min_value=0, max_value=512)),
        st.tuples(
            st.just("run"),
            _OFFSETS,
            st.sampled_from((None, 1, 3, 17)),
        ),
    ),
    min_size=1,
    max_size=24,
)


def _interpret(backend: str, ops) -> list:
    """Run one operation script and return every observable it produced."""
    s = Scheduler(backend=backend)
    log: list = []
    handles: list = []
    pending: dict[int, float] = {}  # tag -> scheduled time, while live
    tag_box = [0]

    def fire(tag):
        pending.pop(tag, None)
        log.append(("fire", tag, round(s.now, 9)))

    def make_chain(repeats, delay):
        def chained(tag):
            pending.pop(tag, None)
            log.append(("fire", tag, round(s.now, 9)))
            if repeats[0] > 0:
                repeats[0] -= 1
                tag_box[0] += 1
                tag = tag_box[0]
                pending[tag] = s.now + delay
                handles.append(s.schedule_after(delay, chained, tag) if delay else s.schedule_at(s.now, chained, tag))

        return chained

    def make_canceller(target):
        def cancelling(tag):
            pending.pop(tag, None)
            log.append(("fire", tag, round(s.now, 9)))
            if handles:
                victim = handles[target % len(handles)]
                victim.cancel()
                pending.pop(victim_tags.get(id(victim)), None)

        return cancelling

    victim_tags: dict[int, int] = {}

    def track(handle, tag):
        handles.append(handle)
        victim_tags[id(handle)] = tag
        return handle

    for op in ops:
        kind = op[0]
        if kind == "at":
            tag_box[0] += 1
            tag = tag_box[0]
            pending[tag] = s.now + op[1]
            track(s.schedule_at(s.now + op[1], fire, tag), tag)
        elif kind == "after":
            tag_box[0] += 1
            tag = tag_box[0]
            pending[tag] = s.now + op[1]
            track(s.schedule_after(op[1], fire, tag), tag)
        elif kind == "batch":
            entries = []
            tags = []
            for offset in op[1]:
                tag_box[0] += 1
                tag = tag_box[0]
                pending[tag] = s.now + offset
                entries.append((s.now + offset, fire, (tag,)))
                tags.append(tag)
            for handle, tag in zip(s.schedule_batch(entries), tags):
                track(handle, tag)
        elif kind == "cancel":
            if handles:
                victim = handles[op[1] % len(handles)]
                victim.cancel()
                pending.pop(victim_tags.get(id(victim)), None)
        elif kind == "chain":
            tag_box[0] += 1
            tag = tag_box[0]
            pending[tag] = s.now + op[1]
            track(s.schedule_at(s.now + op[1], make_chain([op[2]], op[3]), tag), tag)
        elif kind == "cancel_in":
            tag_box[0] += 1
            tag = tag_box[0]
            pending[tag] = s.now + op[1]
            track(s.schedule_at(s.now + op[1], make_canceller(op[2]), tag), tag)
        else:  # run
            horizon = s.now + op[1]
            n = s.run(until=horizon, max_events=op[2])
            log.append(("ran", n))
            log.append(("now", round(s.now, 9)))
            # The PR 3 regression, generalised: a `max_events` (or
            # `until`) break must never advance the clock past an event
            # that is still due — time would run backwards when it fires.
            if pending:
                assert s.now <= min(pending.values()) + 1e-12, (
                    backend,
                    s.now,
                    min(pending.values()),
                )
    # Final drain: everything still outstanding fires in both backends.
    n = s.run(until=s.now + 2000.0)
    log.append(("ran", n))
    log.append(("now", round(s.now, 9)))
    return log


class TestWheelMatchesHeapOracle:
    @settings(max_examples=80, deadline=None)
    @given(ops=_OPS)
    def test_identical_observables(self, ops):
        wheel = _interpret("wheel", ops)
        heap = _interpret("heap", ops)
        assert wheel == heap


class TestSameTickOrdering:
    @settings(max_examples=40, deadline=None)
    @given(
        # sub-quantum jitters: many distinct times inside one ~1 ms slot,
        # plus exact duplicates forcing pure-seq tie-breaks.
        jitters=st.lists(
            st.integers(min_value=0, max_value=6), min_size=2, max_size=20
        ),
        base=st.integers(min_value=0, max_value=5),
    )
    def test_one_slot_fires_in_time_then_seq_order(self, jitters, base):
        for backend in ("wheel", "heap"):
            s = Scheduler(backend=backend)
            t0 = base * 0.37
            fired: list[int] = []
            expected = sorted(
                range(len(jitters)),
                key=lambda i: (t0 + jitters[i] * 1e-5, i),
            )
            for i, jitter in enumerate(jitters):
                s.schedule_at(t0 + jitter * 1e-5, fired.append, i)
            s.run()
            assert fired == expected, backend


class TestZeroAllocationSteadyState:
    def test_rearm_and_chain_reuse_freelist_events(self):
        s = Scheduler()

        def chained():
            s.schedule_after(0.5, chained)

        rearm_handle: list = [None]

        def rearm():
            # heartbeat pattern: cancel the old timeout, arm a new one.
            if rearm_handle[0] is not None:
                rearm_handle[0].cancel()
            rearm_handle[0] = s.schedule_after(10.0, lambda: None)
            s.schedule_after(0.25, rearm)

        # Warm-up: let the freelist grow past the workload's plateau of
        # in-flight + not-yet-reaped cancelled events (the cancelled
        # re-armed timeouts are reaped when the cursor's cascade passes
        # their block, ~10 s after each cancellation).
        s.schedule_after(0.0001, chained)
        s.schedule_after(0.0001, rearm)
        s.run(until=60.0)

        # Steady state: the same traffic must allocate no `_Event` at all.
        before = engine._EVENTS_CREATED
        s.run(until=120.0)
        assert engine._EVENTS_CREATED == before
