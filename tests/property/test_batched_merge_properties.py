"""Batched merges pinned to the per-record oracle.

``SuspicionState.merge_query`` (and its ``merge_remote_suspicions`` /
``merge_remote_mistakes`` conveniences) is the protocol-core hot path: one
fused pass, allocation-free when every record is stale.  The per-record
``merge_remote_suspicion`` / ``merge_remote_mistake`` methods are the
audited reference implementation.  Hypothesis drives both over identical
random record streams — including self-accusations (refutation), repeated
subjects within one stream, and tag ties (mistake-beats-suspicion) — and
the resulting states must be indistinguishable, with the compact delta
exactly summarising the oracle's per-record outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import EMPTY_DELTA, MergeOutcome, SuspicionState, TaggedSet

OWNER = 0
#: Tiny id/tag spaces force collisions: repeated subjects inside one stream,
#: exact tag ties, and records about OWNER all occur routinely.
PIDS = st.integers(min_value=0, max_value=5)
TAGS = st.integers(min_value=0, max_value=8)
RECORDS = st.lists(st.tuples(PIDS, TAGS), max_size=12).map(tuple)
COUNTERS = st.integers(min_value=0, max_value=10)


def seeded_state(suspected, mistakes, counter) -> SuspicionState:
    """A state with arbitrary (disjoint) pre-existing records."""
    state = SuspicionState(owner=OWNER)
    for pid, tag in suspected:
        if pid != OWNER:
            state.suspected.add(pid, tag)
    for pid, tag in mistakes:
        if pid not in state.suspected:
            state.mistakes.add(pid, tag)
    state.counter = counter
    return state


def clone(state: SuspicionState) -> SuspicionState:
    return SuspicionState(
        owner=state.owner,
        suspected=state.suspected.copy(),
        mistakes=state.mistakes.copy(),
        counter=state.counter,
    )


def oracle_merge(state: SuspicionState, suspected, mistakes):
    """Per-record reference: returns what the batched delta must report."""
    suspicions_adopted = []
    mistakes_adopted = []
    self_refuted = False
    for pid, tag in suspected:
        result = state.merge_remote_suspicion(pid, tag)
        if result.outcome is MergeOutcome.SUSPICION_ADOPTED:
            suspicions_adopted.append(pid)
        elif result.outcome is MergeOutcome.SELF_REFUTED:
            self_refuted = True
    for pid, tag in mistakes:
        result = state.merge_remote_mistake(pid, tag)
        if result.outcome is MergeOutcome.MISTAKE_ADOPTED:
            mistakes_adopted.append(pid)
    return tuple(suspicions_adopted), tuple(mistakes_adopted), self_refuted


def assert_same_state(batched: SuspicionState, oracle: SuspicionState) -> None:
    assert batched.suspected == oracle.suspected
    assert batched.mistakes == oracle.mistakes
    assert batched.counter == oracle.counter


class TestMergeQueryMatchesOracle:
    @given(
        pre_s=RECORDS, pre_m=RECORDS, counter=COUNTERS, sus=RECORDS, mis=RECORDS
    )
    @settings(max_examples=300)
    def test_state_and_delta_match(self, pre_s, pre_m, counter, sus, mis):
        batched = seeded_state(pre_s, pre_m, counter)
        oracle = clone(batched)
        delta = batched.merge_query(sus, mis)
        s_adopted, m_adopted, refuted = oracle_merge(oracle, sus, mis)
        assert_same_state(batched, oracle)
        assert delta.suspicions_adopted == s_adopted
        assert delta.mistakes_adopted == m_adopted
        assert delta.self_refuted == refuted

    @given(pre_s=RECORDS, pre_m=RECORDS, counter=COUNTERS, records=RECORDS)
    @settings(max_examples=200)
    def test_suspicion_batch_matches(self, pre_s, pre_m, counter, records):
        batched = seeded_state(pre_s, pre_m, counter)
        oracle = clone(batched)
        delta = batched.merge_remote_suspicions(records)
        s_adopted, _, refuted = oracle_merge(oracle, records, ())
        assert_same_state(batched, oracle)
        assert delta.suspicions_adopted == s_adopted
        assert delta.mistakes_adopted == ()
        assert delta.self_refuted == refuted

    @given(pre_s=RECORDS, pre_m=RECORDS, counter=COUNTERS, records=RECORDS)
    @settings(max_examples=200)
    def test_mistake_batch_matches(self, pre_s, pre_m, counter, records):
        batched = seeded_state(pre_s, pre_m, counter)
        oracle = clone(batched)
        delta = batched.merge_remote_mistakes(records)
        _, m_adopted, _ = oracle_merge(oracle, (), records)
        assert_same_state(batched, oracle)
        assert delta.suspicions_adopted == ()
        assert delta.mistakes_adopted == m_adopted
        assert not delta.self_refuted

    @given(pre_s=RECORDS, pre_m=RECORDS, counter=COUNTERS)
    @settings(max_examples=150)
    def test_echoing_own_state_back_is_always_empty(self, pre_s, pre_m, counter):
        # The steady state: a query carrying exactly our sets is 100% stale,
        # and staleness must be reported with the shared empty delta (no
        # allocation), never a fresh object.
        state = seeded_state(pre_s, pre_m, counter)
        delta = state.merge_query(
            state.suspected.snapshot(), state.mistakes.snapshot()
        )
        assert delta is EMPTY_DELTA
        assert not delta

    @given(tag=TAGS, counter=COUNTERS)
    def test_self_refutation_round_trip(self, tag, counter):
        batched = SuspicionState(owner=OWNER, counter=counter)
        oracle = SuspicionState(owner=OWNER, counter=counter)
        delta = batched.merge_query(((OWNER, tag),), ())
        oracle.merge_remote_suspicion(OWNER, tag)
        assert_same_state(batched, oracle)
        assert delta.self_refuted
        assert OWNER not in batched.suspected
        assert batched.mistakes.tag_of(OWNER) == batched.counter

    @given(pid=PIDS.filter(lambda p: p != OWNER), tag=TAGS)
    def test_tie_goes_to_the_mistake_in_one_batch(self, pid, tag):
        # A suspicion and a mistake for the same subject with the same tag
        # inside one query: the suspicion lands first, the mistake displaces
        # it — exactly as the sequential oracle dictates.
        state = SuspicionState(owner=OWNER)
        delta = state.merge_query(((pid, tag),), ((pid, tag),))
        assert pid not in state.suspected
        assert state.mistakes.tag_of(pid) == tag
        assert delta.suspicions_adopted == (pid,)
        assert delta.mistakes_adopted == (pid,)


class TestTaggedSetCaching:
    @given(records=RECORDS)
    def test_snapshot_matches_fresh_sort(self, records):
        ts = TaggedSet()
        for pid, tag in records:
            ts.add(pid, tag)
        expected = tuple(sorted(ts.ids(), key=repr))
        assert tuple(pid for pid, _ in ts.snapshot()) == expected
        # Cache hit returns the identical object until the next mutation.
        assert ts.snapshot() is ts.snapshot()
        assert ts.ids() is ts.ids()

    @given(records=st.lists(st.tuples(PIDS, TAGS), min_size=1, max_size=12))
    def test_mutation_invalidates_and_reequals(self, records):
        ts = TaggedSet()
        for pid, tag in records:
            before = ts.snapshot()
            ts.add(pid, tag)
            after = ts.snapshot()
            assert after == tuple(sorted(ts._tags.items(), key=lambda i: repr(i[0])))
            if before != after:
                assert ts.version > 0
