"""Property-based tests of the counter-tag merge semantics.

The merge rules are the protocol's safety core: whatever interleaving of
local suspicions, remote suspicions and remote mistakes a process observes,
its state must stay internally consistent and freshness must be monotone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import MergeOutcome, SuspicionState

OWNER = 0
PIDS = st.integers(min_value=0, max_value=6)
TAGS = st.integers(min_value=0, max_value=30)

#: One protocol-visible operation on the state.  A mistake record about
#: OWNER can only ever originate from OWNER's *own* refutation, tagged
#: at-or-below its counter at that instant — a relayed ``<OWNER, tag>``
#: mistake with an arbitrary tag is a forged record no real execution
#: produces (and the invariant suite now flags it), so the generator only
#: creates self-mistakes through the realistic route: a remote suspicion
#: naming OWNER, which the state refutes itself.
OPERATIONS = st.one_of(
    st.tuples(st.just("remote_suspicion"), PIDS, TAGS),
    st.tuples(st.just("remote_mistake"), PIDS.filter(lambda p: p != OWNER), TAGS),
    st.tuples(st.just("local_suspicion"), PIDS.filter(lambda p: p != OWNER), TAGS),
    st.tuples(st.just("end_round"), st.just(0), st.just(0)),
)


def apply_operations(state: SuspicionState, operations) -> None:
    for op, pid, tag in operations:
        if op == "remote_suspicion":
            state.merge_remote_suspicion(pid, tag)
        elif op == "remote_mistake":
            state.merge_remote_mistake(pid, tag)
        elif op == "local_suspicion":
            if pid not in state.suspected:
                state.suspect_locally(pid)
        elif op == "end_round":
            state.end_round()


class TestStateInvariants:
    @given(st.lists(OPERATIONS, max_size=60))
    @settings(max_examples=200)
    def test_invariants_hold_under_any_interleaving(self, operations):
        state = SuspicionState(owner=OWNER)
        apply_operations(state, operations)
        assert state.invariant_violations() == []

    @given(st.lists(OPERATIONS, max_size=60))
    @settings(max_examples=200)
    def test_owner_never_in_suspected(self, operations):
        state = SuspicionState(owner=OWNER)
        apply_operations(state, operations)
        assert OWNER not in state.suspected

    @given(st.lists(OPERATIONS, max_size=60))
    @settings(max_examples=200)
    def test_sets_stay_disjoint(self, operations):
        state = SuspicionState(owner=OWNER)
        apply_operations(state, operations)
        assert not (state.suspected.ids() & state.mistakes.ids())

    @given(st.lists(OPERATIONS, max_size=60))
    @settings(max_examples=100)
    def test_counter_never_decreases(self, operations):
        state = SuspicionState(owner=OWNER)
        low_water = 0
        for batch in [operations[i : i + 5] for i in range(0, len(operations), 5)]:
            apply_operations(state, batch)
            assert state.counter >= low_water
            low_water = state.counter


class TestFreshnessMonotonicity:
    @given(PIDS.filter(lambda p: p != OWNER), TAGS, TAGS)
    def test_stored_tag_never_regresses(self, pid, first, second):
        state = SuspicionState(owner=OWNER)
        state.merge_remote_suspicion(pid, first)
        state.merge_remote_suspicion(pid, second)
        assert state.suspected.tag_of(pid) == max(first, second)

    @given(PIDS.filter(lambda p: p != OWNER), TAGS, TAGS)
    def test_mistake_tag_never_regresses(self, pid, first, second):
        state = SuspicionState(owner=OWNER)
        state.merge_remote_mistake(pid, first)
        state.merge_remote_mistake(pid, second)
        assert state.mistakes.tag_of(pid) == max(first, second)

    @given(PIDS.filter(lambda p: p != OWNER), TAGS)
    def test_merge_is_idempotent(self, pid, tag):
        state_once = SuspicionState(owner=OWNER)
        state_once.merge_remote_suspicion(pid, tag)
        state_twice = SuspicionState(owner=OWNER)
        state_twice.merge_remote_suspicion(pid, tag)
        state_twice.merge_remote_suspicion(pid, tag)
        assert state_once.suspected == state_twice.suspected
        assert state_once.mistakes == state_twice.mistakes

    @given(
        st.lists(st.tuples(PIDS.filter(lambda p: p != OWNER), TAGS), max_size=20)
    )
    def test_suspicion_merge_order_does_not_matter(self, records):
        forward = SuspicionState(owner=OWNER)
        backward = SuspicionState(owner=OWNER)
        for pid, tag in records:
            forward.merge_remote_suspicion(pid, tag)
        for pid, tag in reversed(records):
            backward.merge_remote_suspicion(pid, tag)
        assert forward.suspected == backward.suspected

    @given(PIDS.filter(lambda p: p != OWNER), TAGS)
    def test_tie_goes_to_the_mistake(self, pid, tag):
        state = SuspicionState(owner=OWNER)
        state.merge_remote_suspicion(pid, tag)
        result = state.merge_remote_mistake(pid, tag)
        assert result.outcome is MergeOutcome.MISTAKE_ADOPTED
        assert pid not in state.suspected

    @given(PIDS.filter(lambda p: p != OWNER), TAGS)
    def test_tie_does_not_go_to_the_suspicion(self, pid, tag):
        state = SuspicionState(owner=OWNER)
        state.merge_remote_mistake(pid, tag)
        result = state.merge_remote_suspicion(pid, tag)
        assert result.outcome is MergeOutcome.IGNORED
        assert pid not in state.suspected


class TestRefutation:
    @given(TAGS)
    def test_self_accusation_always_refuted_with_greater_tag(self, tag):
        state = SuspicionState(owner=OWNER)
        result = state.merge_remote_suspicion(OWNER, tag)
        assert result.outcome is MergeOutcome.SELF_REFUTED
        assert state.mistakes.tag_of(OWNER) > tag

    @given(st.lists(TAGS, min_size=1, max_size=10))
    def test_repeated_accusations_keep_counter_ahead(self, tags):
        state = SuspicionState(owner=OWNER)
        for tag in tags:
            state.merge_remote_suspicion(OWNER, tag)
        assert state.counter > max(tags) or state.mistakes.tag_of(OWNER) >= max(tags)
