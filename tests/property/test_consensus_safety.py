"""Hypothesis safety suite: consensus safety under *any* oracle output.

The CT correctness argument splits cleanly: liveness needs ◇S (eventually
some correct process is never suspected), but agreement and validity must
hold under **arbitrary** detector behaviour — a suspect list that flips on
every query, a leader oracle that elects a different process each time, a
network that reorders, duplicates and drops ballots, coordinators crashing
mid-round.  This suite drives the registry-built sans-I/O state machines
(both ``ct`` and ``omega``) through adversarial schedules drawn by
Hypothesis and asserts the safety invariants after every step.

No simulator, no clocks: the adversary *is* the scheduler.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import ConsensusContext, ConsensusOracle, build_protocol
from repro.core.effects import SendTo


class AdversarialCluster:
    """Registry-built participants under a fully adversarial environment.

    The network is a bag of in-flight ``(src, dst, message)`` ballots; the
    schedule decides which is delivered, duplicated or dropped, which
    process crashes, and what every oracle answers at every query.
    """

    def __init__(self, protocol, n, f, suspect_pool, leader_pool, proposals):
        self.membership = frozenset(range(1, n + 1))
        self._suspect_pool = suspect_pool  # per-query adversarial answers
        self._leader_pool = leader_pool
        self._queries = 0
        self.participants = {
            pid: build_protocol(
                protocol,
                ConsensusContext(process_id=pid, membership=self.membership, f=f),
                ConsensusOracle(
                    suspects=self._next_suspects, leader=self._next_leader
                ),
            )
            for pid in sorted(self.membership)
        }
        self.proposals = proposals
        self.crashed: set = set()
        self.queue: list = []  # in-flight (src, dst, message)

    def _next_suspects(self):
        self._queries += 1
        return self._suspect_pool[self._queries % len(self._suspect_pool)]

    def _next_leader(self):
        self._queries += 1
        return self._leader_pool[self._queries % len(self._leader_pool)]

    # -- adversary moves ---------------------------------------------------
    def propose(self, pid):
        participant = self.participants[pid]
        if pid in self.crashed or participant.proposed:
            return
        self._submit(pid, participant.propose(self.proposals[pid]))

    def deliver(self, index, *, duplicate=False):
        if not self.queue:
            return
        src, dst, message = self.queue[index % len(self.queue)]
        if not duplicate:
            del self.queue[index % len(self.queue)]
        if dst in self.crashed:
            return
        self._submit(dst, self.participants[dst].on_message(src, message))

    def drop(self, index):
        if self.queue:
            del self.queue[index % len(self.queue)]

    def poke(self, pid):
        if pid not in self.crashed:
            self._submit(pid, self.participants[pid].poke())

    def crash(self, pid):
        self.crashed.add(pid)

    def _submit(self, sender, effects):
        for effect in effects:
            assert isinstance(effect, SendTo), f"foreign effect {effect!r}"
            self.queue.append((sender, effect.destination, effect.message))

    # -- invariants --------------------------------------------------------
    def check_safety(self):
        decided = {
            pid: participant.decision
            for pid, participant in self.participants.items()
            if participant.decided
        }
        assert len(set(decided.values())) <= 1, f"agreement broken: {decided}"
        proposed = {
            self.proposals[pid]
            for pid, participant in self.participants.items()
            if participant.proposed
        }
        for pid, value in decided.items():
            assert value in proposed, f"validity broken: {pid} decided {value!r}"


@st.composite
def adversarial_runs(draw):
    n = draw(st.integers(min_value=3, max_value=6))
    f = draw(st.integers(min_value=1, max_value=(n - 1) // 2))
    members = list(range(1, n + 1))
    # Oracle answers: arbitrary suspect sets / leaders, cycled per query.
    suspect_pool = draw(
        st.lists(
            st.frozensets(st.sampled_from(members), max_size=n),
            min_size=1,
            max_size=8,
        )
    )
    leader_pool = draw(
        st.lists(st.sampled_from(members), min_size=1, max_size=8)
    )
    proposals = {pid: draw(st.integers(min_value=0, max_value=3)) for pid in members}
    # The schedule: every adversary move is a tagged draw; delivery indexes
    # are reduced modulo the live queue at execution time.
    moves = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("propose"), st.sampled_from(members)),
                st.tuples(st.just("deliver"), st.integers(0, 63)),
                st.tuples(st.just("duplicate"), st.integers(0, 63)),
                st.tuples(st.just("drop"), st.integers(0, 63)),
                st.tuples(st.just("poke"), st.sampled_from(members)),
                st.tuples(st.just("crash"), st.sampled_from(members)),
            ),
            max_size=120,
        )
    )
    return n, f, suspect_pool, leader_pool, proposals, moves


@given(protocol=st.sampled_from(["ct", "omega"]), run=adversarial_runs())
@settings(max_examples=60, deadline=None)
def test_safety_under_adversarial_oracles_and_schedules(protocol, run):
    n, f, suspect_pool, leader_pool, proposals, moves = run
    cluster = AdversarialCluster(protocol, n, f, suspect_pool, leader_pool, proposals)
    for pid in cluster.participants:
        cluster.propose(pid)  # everyone in the race from the start
    for move, arg in moves:
        if move == "propose":
            cluster.propose(arg)
        elif move == "deliver":
            cluster.deliver(arg)
        elif move == "duplicate":
            cluster.deliver(arg, duplicate=True)
        elif move == "drop":
            cluster.drop(arg)
        elif move == "poke":
            cluster.poke(arg)
        elif move == "crash":
            cluster.crash(arg)
        cluster.check_safety()
    # Drain whatever the adversary left in flight: safety must survive the
    # quiescent tail too (late DECIDE relays, stale round traffic).
    for _ in range(400):
        if not cluster.queue:
            break
        cluster.deliver(0)
        cluster.check_safety()


@given(run=adversarial_runs())
@settings(max_examples=30, deadline=None)
def test_decide_once_under_duplication(run):
    # Decision values are immutable once set, even when DECIDE broadcasts
    # are duplicated and conflicting late ballots keep arriving.
    n, f, suspect_pool, leader_pool, proposals, moves = run
    cluster = AdversarialCluster("ct", n, f, suspect_pool, leader_pool, proposals)
    for pid in cluster.participants:
        cluster.propose(pid)
    first_decisions = {}
    for move, arg in moves:
        if move == "deliver":
            cluster.deliver(arg)
        elif move == "duplicate":
            cluster.deliver(arg, duplicate=True)
        elif move == "poke":
            cluster.poke(arg)
        for pid, participant in cluster.participants.items():
            if participant.decided:
                first_decisions.setdefault(pid, participant.decision)
                assert participant.decision == first_decisions[pid]
