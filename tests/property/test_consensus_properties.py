"""Property-based consensus correctness over randomized runs.

Safety (agreement, validity) must hold for *every* seed, crash pattern and
proposal assignment; termination additionally needs the model's
assumptions (f < n/2, ◇S behavior) which the scenario guarantees.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import ConsensusHarness
from repro.sim import ExponentialLatency, QueryPacing
from repro.sim.cluster import time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan


@st.composite
def consensus_scenarios(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    f = draw(st.integers(min_value=1, max_value=max(1, (n - 1) // 2)))
    crash_count = draw(st.integers(min_value=0, max_value=f))
    victims = draw(
        st.lists(
            st.integers(min_value=1, max_value=n),
            min_size=crash_count,
            max_size=crash_count,
            unique=True,
        )
    )
    crash_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0),
            min_size=crash_count,
            max_size=crash_count,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return n, f, list(zip(victims, crash_times)), seed


class TestConsensusProperties:
    @given(consensus_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_agreement_validity_termination(self, scenario):
        n, f, crashes, seed = scenario
        plan = FaultPlan.of(
            crashes=[CrashFault(pid, time) for pid, time in crashes]
        )
        harness = ConsensusHarness(
            n=n,
            f=f,
            fd_driver_factory=time_free_driver_factory(f, QueryPacing(grace=0.05)),
            latency=ExponentialLatency(0.001),
            seed=seed,
            fault_plan=plan,
            propose_at=0.01,
        )
        result = harness.run(until=120.0)
        assert result.agreement_holds
        assert result.validity_holds
        assert result.all_correct_decided

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        values=st.lists(st.integers(), min_size=5, max_size=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_decision_is_some_proposed_value(self, seed, values):
        proposals = {pid: values[pid - 1] for pid in range(1, 6)}
        harness = ConsensusHarness(
            n=5,
            f=2,
            fd_driver_factory=time_free_driver_factory(2, QueryPacing(grace=0.05)),
            latency=ExponentialLatency(0.001),
            seed=seed,
            proposals=proposals,
            propose_at=0.01,
        )
        result = harness.run(until=60.0)
        assert result.all_correct_decided
        decided = set(result.decisions.values())
        assert len(decided) == 1
        assert decided <= set(values)
