"""Consensus over real (simulated) failure detectors, end to end."""

import pytest

from repro.consensus import ConsensusHarness
from repro.errors import ConfigurationError
from repro.sim import ExponentialLatency, QueryPacing
from repro.sim.cluster import heartbeat_driver_factory, time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan


def harness(n=5, f=2, *, fd=None, fault_plan=None, seed=1, proposals=None):
    return ConsensusHarness(
        n=n,
        f=f,
        fd_driver_factory=fd if fd is not None else time_free_driver_factory(
            f, QueryPacing(grace=0.05)
        ),
        latency=ExponentialLatency(0.001),
        seed=seed,
        fault_plan=fault_plan,
        proposals=proposals,
        propose_at=0.01,
    )


class TestFaultFree:
    def test_all_decide_quickly_with_agreement_and_validity(self):
        result = harness().run(until=30.0)
        assert result.all_correct_decided
        assert result.agreement_holds
        assert result.validity_holds
        assert result.last_decision_time < 1.0

    def test_custom_proposals_respected(self):
        proposals = {pid: pid * 100 for pid in range(1, 6)}
        result = harness(proposals=proposals).run(until=30.0)
        assert set(result.decisions.values()) <= set(proposals.values())

    def test_single_round_suffices(self):
        result = harness().run(until=30.0)
        assert max(result.rounds_executed.values()) <= 2


class TestCoordinatorCrash:
    def test_crash_before_proposing(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 0.001)])
        result = harness(fault_plan=plan).run(until=60.0)
        assert result.all_correct_decided
        assert result.agreement_holds
        assert result.validity_holds

    def test_two_consecutive_coordinators_crash(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 0.001), CrashFault(2, 0.001)])
        result = harness(fault_plan=plan).run(until=60.0)
        assert result.all_correct_decided
        assert result.agreement_holds
        # Rounds 1 and 2 both stall on dead coordinators; round 3 decides.
        assert max(
            r for pid, r in result.rounds_executed.items() if pid in result.correct
        ) >= 2

    def test_crash_mid_run_of_non_coordinator(self):
        plan = FaultPlan.of(crashes=[CrashFault(4, 0.05)])
        result = harness(fault_plan=plan).run(until=60.0)
        assert result.all_correct_decided
        assert result.agreement_holds

    def test_decision_faster_than_heartbeat_timeout(self):
        # The motivating comparison: recovery speed is one query round for
        # the time-free detector vs a full Θ for the heartbeat detector.
        plan = FaultPlan.of(crashes=[CrashFault(1, 0.001)])
        tf = harness(fault_plan=plan, seed=2).run(until=60.0)
        hb = harness(
            fd=heartbeat_driver_factory(period=0.5, timeout=1.0),
            fault_plan=plan,
            seed=2,
        ).run(until=60.0)
        assert tf.all_correct_decided and hb.all_correct_decided
        assert tf.last_decision_time < hb.last_decision_time


class TestSafetyUnderBadDetectors:
    def test_agreement_even_with_wildly_wrong_suspicions(self):
        # Safety must not depend on detector quality: use a heartbeat with
        # an absurdly aggressive timeout (constant false suspicions).
        result = harness(
            fd=heartbeat_driver_factory(period=0.5, timeout=0.0001)
        ).run(until=60.0)
        assert result.agreement_holds
        assert result.validity_holds
        # Termination is *not* asserted: ◇S accuracy is genuinely violated.


class TestConfigValidation:
    def test_majority_requirement(self):
        with pytest.raises(ConfigurationError):
            harness(n=4, f=2)

    def test_missing_proposits_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsensusHarness(n=3, f=1, proposals={1: "a"})
