"""Every experiment runs end-to-end and reproduces the expected *shape*.

These are the reproduction's acceptance tests: tiny parameterisations of
the nine experiments, with assertions on the qualitative claims (who wins,
what is flat, what decreases, what collapses to zero) rather than absolute
numbers.
"""

import pytest

from repro.experiments import (
    e1_density,
    e2_mobility,
    f1_detection_cdf,
    f2_delay_variance,
    f3_mp_sensitivity,
    t1_detection_vs_n,
    t2_impact_of_f,
    t3_message_load,
    t4_consensus,
)


@pytest.fixture(scope="module")
def t1_table():
    return t1_detection_vs_n.run(
        t1_detection_vs_n.T1Params(sizes=(8, 16), trials=2, horizon=30.0)
    )


class TestT1:
    def test_rows_cover_sizes(self, t1_table):
        assert t1_table.column("n") == [8, 16]

    def test_heartbeat_sits_in_timeout_band(self, t1_table):
        for mean in t1_table.column("heartbeat mean (s)"):
            assert 1.0 <= mean <= 2.1  # [Θ-Δ, Θ] plus stagger slack

    def test_time_free_tracks_grace(self, t1_table):
        for mean in t1_table.column("time-free mean (s)"):
            assert 1.0 <= mean <= 1.4  # ≈ Δ + δ

    def test_time_free_beats_heartbeat(self, t1_table):
        tf = t1_table.column("time-free mean (s)")
        hb = t1_table.column("heartbeat mean (s)")
        assert all(a < b for a, b in zip(tf, hb))


class TestT2:
    def test_rounds_terminate_for_every_f(self):
        table = t2_impact_of_f.run(
            t2_impact_of_f.T2Params(n=12, f_values=(1, 5), horizon=25.0)
        )
        assert all(v > 5 for v in table.column("rounds/process"))

    def test_detection_time_stays_near_grace(self):
        table = t2_impact_of_f.run(
            t2_impact_of_f.T2Params(n=12, f_values=(1, 5), horizon=25.0)
        )
        for mean in table.column("detect mean (s)"):
            assert mean < 1.6


class TestT3:
    def test_time_free_costs_about_twice_heartbeat(self):
        table = t3_message_load.run(
            t3_message_load.T3Params(sizes=(10,), horizon=15.0)
        )
        loads = dict(zip(table.column("detector"), table.column("msgs/s/process")))
        tf = loads["time-free (async)"]
        hb = loads["heartbeat Θ=2s"]
        assert 1.5 <= tf / hb <= 2.5

    def test_all_detectors_reported(self):
        table = t3_message_load.run(
            t3_message_load.T3Params(sizes=(10,), horizon=15.0)
        )
        assert len(table.rows) == 4


class TestT4:
    @pytest.fixture(scope="class")
    def table(self):
        return t4_consensus.run(t4_consensus.T4Params(n=5, f=2, horizon=40.0))

    def test_everyone_decides_everywhere(self, table):
        assert all(table.column("all correct decided"))
        assert all(table.column("agreement"))
        assert all(table.column("validity"))

    def test_time_free_recovers_faster_from_coordinator_crash(self, table):
        times = {}
        for detector, scenario, *_rest, decision_time, _rounds in [
            tuple(row) for row in table.rows
        ]:
            times[(detector, scenario)] = decision_time
        tf = next(v for (d, s), v in times.items() if "time-free" in d and "crash" in s)
        hb = next(v for (d, s), v in times.items() if "heartbeat" in d and "crash" in s)
        assert tf < hb


class TestF1:
    def test_distributions_are_ordered(self):
        table = f1_detection_cdf.run(
            f1_detection_cdf.F1Params(n=10, f=2, trials=3, horizon=20.0)
        )
        medians = dict(zip(table.column("quantile"), zip(
            table.column("time-free (s)"), table.column("heartbeat (s)")
        )))
        tf_median, hb_median = medians["p50"]
        assert tf_median < hb_median

    def test_heartbeat_quantiles_in_band(self):
        table = f1_detection_cdf.run(
            f1_detection_cdf.F1Params(n=10, f=2, trials=3, horizon=20.0)
        )
        rows = dict(zip(table.column("quantile"), table.column("heartbeat (s)")))
        assert 0.9 <= rows["p10"]
        assert rows["p99"] <= 2.2


class TestF2:
    @pytest.fixture(scope="class")
    def shift_table(self):
        params = f2_delay_variance.F2Params(
            n=10, f=2, horizon=40.0, shift_factors=(1.0, 2000.0)
        )
        return f2_delay_variance.run_regime_shift(params)

    def _rows(self, table):
        return [
            dict(zip(table.headers, row))
            for row in table.rows
        ]

    def test_time_free_keeps_the_anchor_at_extreme_inflation(self, shift_table):
        rows = self._rows(shift_table)
        tf = [r for r in rows if r["detector"] == "time-free" and r["stress"] == "x2000"]
        assert tf[0]["responsive-node false susp."] == 0
        assert tf[0]["responsive node clear at end"] is True

    def test_heartbeat_loses_the_anchor(self, shift_table):
        rows = self._rows(shift_table)
        hb = [
            r
            for r in rows
            if r["detector"].startswith("heartbeat") and r["stress"] == "x2000"
        ]
        assert hb[0]["responsive-node false susp."] > 0

    def test_calm_regime_is_clean_for_everyone(self, shift_table):
        rows = self._rows(shift_table)
        calm = [r for r in rows if r["stress"] == "x1"]
        assert all(r["total false susp."] == 0 for r in calm)


class TestF3:
    @pytest.fixture(scope="class")
    def table(self):
        return f3_mp_sensitivity.run(
            f3_mp_sensitivity.F3Params(n=8, f=3, horizon=12.0, speedups=(8.0, 0.5))
        )

    def test_strong_bias_certifies_mp(self, table):
        rows = dict(zip(table.column("speedup"), table.column("MP holds (oracle)")))
        assert rows[8.0] is True

    def test_winning_ratio_decays_with_speedup(self, table):
        ratios = dict(zip(table.column("speedup"), table.column("winning ratio")))
        assert ratios[8.0] > ratios[0.5]

    def test_suspicions_grow_as_mp_degrades(self, table):
        suspected = dict(
            zip(table.column("speedup"), table.column("times favored suspected"))
        )
        assert suspected[0.5] > suspected[8.0]


class TestE1:
    @pytest.fixture(scope="class")
    def table(self):
        return e1_density.run(
            e1_density.E1Params(n=35, f=3, densities=(6, 12), crashes=3, horizon=35.0)
        )

    def test_gossip_stays_in_timeout_band(self, table):
        rows = [dict(zip(table.headers, row)) for row in table.rows]
        for row in rows:
            if row["detector"] == "Friedman-Tcharny":
                assert 0.9 <= row["detect mean (s)"] <= 2.1

    def test_time_free_beats_gossip_at_every_density(self, table):
        rows = [dict(zip(table.headers, row)) for row in table.rows]
        by_density: dict = {}
        for row in rows:
            by_density.setdefault(row["target d"], {})[row["detector"]] = row
        for detectors in by_density.values():
            tf = detectors["time-free (async)"]["detect mean (s)"]
            gossip = detectors["Friedman-Tcharny"]["detect mean (s)"]
            assert tf < gossip

    def test_time_free_improves_with_density(self, table):
        # At miniature scale the trend carries sampling noise; the full-size
        # run (E1Params.full) shows it cleanly — here we allow slack.
        rows = [dict(zip(table.headers, row)) for row in table.rows]
        async_rows = [r for r in rows if r["detector"] == "time-free (async)"]
        assert async_rows[0]["detect mean (s)"] >= async_rows[-1]["detect mean (s)"] - 0.1

    def test_no_crash_goes_undetected(self, table):
        assert all(u == 0 for u in table.column("undetected"))


class TestE2:
    @pytest.fixture(scope="class")
    def table(self):
        return e2_mobility.run(
            e2_mobility.E2Params(
                n=22, depart=20.0, arrive=50.0, horizon=90.0, sample_step=2.0
            )
        )

    def test_everyone_suspects_the_mover_while_away(self, table):
        counts = dict(zip(table.column("time (s)"), table.column("false suspicions (alg 2)")))
        away_sample = [t for t in counts if 35.0 <= t <= 48.0]
        assert away_sample
        assert all(counts[t] == 21 for t in away_sample)  # n - 1 observers

    def test_algorithm_2_collapses_to_zero(self, table):
        final = table.rows[-1]
        row = dict(zip(table.headers, final))
        assert row["false suspicions (alg 2)"] == 0

    def test_ablation_never_settles(self, table):
        final = dict(zip(table.headers, table.rows[-1]))
        assert final["false suspicions (no eviction)"] > 0
