"""End-to-end tests of distributed grid execution (``repro.harness.grid``).

The acceptance property throughout: a grid split across workers — static
shards or work stealing, including a worker SIGKILLed mid-cell — writes
an artifact byte-identical to the single-host run.  Workers here are
threads or real subprocesses sharing a tmp ``workers_dir``; nothing about
the protocol distinguishes that from separate hosts on a shared
filesystem.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    ResultCache,
    grid_status,
    run_grid,
    run_grid_worker,
    write_artifact,
)
from repro.harness.cache import cache_key
from repro.harness.cli import main
from repro.harness.registry import all_specs, get_spec
from tests.goldens import smoke_params
from tests.integration.test_experiment_conformance import _smoke_run

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def zz_experiment():
    """The out-of-tree plugin experiment, un-registered again afterwards.

    Importing :mod:`tests.grid_plugin` registers ``zz`` exactly as a
    worker's ``REPRO_PLUGINS=tests.grid_plugin`` would; popping it in
    teardown keeps the registry at its built-in set for every other test.
    """
    from repro.experiments import api
    from tests import grid_plugin

    api._REGISTRY.setdefault("zz", grid_plugin.SPEC)
    yield grid_plugin.SPEC
    api._REGISTRY.pop("zz", None)


def single_host_artifact(exp_id, params, out_dir):
    """The reference artifact: one sequential in-process run."""
    return write_artifact(out_dir, run_grid(get_spec(exp_id), params))


class TestStaticSharding:
    def test_two_shards_assemble_byte_identical_artifact(self, tmp_path):
        params = smoke_params()["t2"]
        golden = single_host_artifact("t2", params, tmp_path / "golden").read_bytes()
        workers = tmp_path / "workers"
        cache = ResultCache(workers / "cache")
        spec = get_spec("t2")
        first = run_grid_worker(
            spec, params, workers, tmp_path / "out", cache=cache,
            worker="w1", shard=(1, 2),
        )
        # Shard 1/2 finished its half; the grid is not yet complete, so it
        # must not have produced an artifact.
        assert first.artifact is None
        assert not first.counts.all_done
        second = run_grid_worker(
            spec, params, workers, tmp_path / "out", cache=cache,
            worker="w2", shard=(2, 2),
        )
        assert second.counts.all_done
        assert second.artifact is not None
        assert second.artifact.read_bytes() == golden
        total = first.counts.total
        assert first.completed + second.completed == total

    def test_relaunched_shard_resumes_from_the_ledger(self, tmp_path):
        params = smoke_params()["t2"]
        workers = tmp_path / "workers"
        cache = ResultCache(workers / "cache")
        spec = get_spec("t2")
        run_grid_worker(spec, params, workers, tmp_path / "out",
                        cache=cache, worker="w1", shard=(1, 2))
        # Relaunching the same shard finds nothing left to do.
        again = run_grid_worker(spec, params, workers, tmp_path / "out",
                                cache=cache, worker="w1b", shard=(1, 2))
        assert again.completed == 0


class TestWorkStealing:
    def test_concurrent_stealers_split_the_grid(self, tmp_path):
        params = smoke_params()["t2"]
        golden = single_host_artifact("t2", params, tmp_path / "golden").read_bytes()
        workers = tmp_path / "workers"
        spec = get_spec("t2")
        reports = {}

        def stealer(name):
            reports[name] = run_grid_worker(
                spec, params, workers, tmp_path / "out",
                cache=ResultCache(workers / "cache"),
                worker=name, steal=True, poll=0.05,
            )

        threads = [threading.Thread(target=stealer, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = reports["a"].counts.total
        # High TTL + live workers: every cell completed exactly once.
        assert reports["a"].completed + reports["b"].completed == total
        finishers = [r for r in reports.values() if r.artifact is not None]
        assert finishers  # at least one observed completion and assembled
        for report in finishers:
            assert report.artifact.read_bytes() == golden


class TestEveryExperiment:
    @pytest.mark.parametrize("exp_id", sorted(all_specs()))
    def test_distributed_assembly_matches_single_host(self, exp_id, tmp_path):
        """Byte-identity for every experiment's smoke grid.

        The single-host reference comes from the conformance suite's
        cached smoke run; its outcomes pre-warm the shared cache, so the
        distributed worker only exercises claim/complete/assemble — which
        is exactly what this test pins (``report.ran == 0`` proves no
        cell was re-simulated, i.e. the cache really is the data plane).
        """
        result = _smoke_run(exp_id)
        golden = write_artifact(tmp_path / "golden", result).read_bytes()
        params = smoke_params()[exp_id]
        workers = tmp_path / "workers"
        cache = ResultCache(workers / "cache")
        for outcome in result.outcomes:
            key = cache_key(exp_id, params, outcome.coords, outcome.seed)
            cache.put(key, outcome.value)
        report = run_grid_worker(
            get_spec(exp_id), params, workers, tmp_path / "out",
            cache=cache, worker="w", steal=True,
        )
        assert report.ran == 0
        assert report.cached == report.counts.total
        assert report.artifact is not None
        assert report.artifact.read_bytes() == golden


class TestWorkerLossResume:
    def test_sigkilled_worker_is_replaced_byte_identically(
        self, tmp_path, zz_experiment, monkeypatch
    ):
        """SIGKILL a real worker subprocess mid-cell; a second worker
        inherits the expired lease and the artifact is byte-identical to
        an uninterrupted single-host run."""
        from tests.grid_plugin import ZzParams

        params = ZzParams(sleep=0.4)
        golden = single_host_artifact("zz", params, tmp_path / "golden").read_bytes()
        workers = tmp_path / "workers"
        env = dict(
            os.environ,
            REPRO_PLUGINS="tests.grid_plugin",
            PYTHONPATH=os.pathsep.join(
                [str(REPO_ROOT / "src"), str(REPO_ROOT),
                 os.environ.get("PYTHONPATH", "")]
            ),
        )
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "zz",
             "--workers-dir", str(workers), "--steal",
             "--lease-ttl", "1.5", "-p", "sleep=0.4",
             "--out", str(tmp_path / "out"), "--quiet"],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until it is demonstrably mid-grid: at least one cell
            # done, at least one lease held — then kill without warning.
            deadline = time.monotonic() + 60
            while True:
                assert time.monotonic() < deadline, "victim never started working"
                assert victim.poll() is None, "victim exited before being killed"
                try:
                    status = grid_status(workers)
                except ConfigurationError:  # manifest not written yet
                    time.sleep(0.05)
                    continue
                if status.counts.done >= 1 and status.counts.leased >= 1:
                    break
                time.sleep(0.05)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)
        interrupted = grid_status(workers)
        assert not interrupted.counts.all_done
        # The replacement worker must present the same plugin list as the
        # manifest records, exactly as a real relaunch would.
        monkeypatch.setenv("REPRO_PLUGINS", "tests.grid_plugin")
        report = run_grid_worker(
            zz_experiment, params, workers, tmp_path / "out",
            cache=ResultCache(workers / "cache"),
            worker="rescuer", steal=True, ttl=1.5, poll=0.1,
        )
        assert report.counts.all_done
        assert report.completed >= 1  # it did inherit work
        assert report.artifact is not None
        assert report.artifact.read_bytes() == golden


class TestJoinValidation:
    def test_param_mismatch_refused(self, tmp_path):
        import dataclasses

        params = smoke_params()["t2"]
        workers = tmp_path / "workers"
        cache = ResultCache(workers / "cache")
        spec = get_spec("t2")
        run_grid_worker(spec, params, workers, tmp_path / "out",
                        cache=cache, worker="w1", shard=(1, 1))
        with pytest.raises(ConfigurationError, match="params differs"):
            run_grid_worker(spec, dataclasses.replace(params, seed=7),
                            workers, tmp_path / "out",
                            cache=cache, worker="w2", steal=True)

    def test_exactly_one_mode_required(self, tmp_path):
        params = smoke_params()["t2"]
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ConfigurationError, match="exactly one mode"):
            run_grid_worker(get_spec("t2"), params, tmp_path / "w",
                            cache=cache, shard=(1, 2), steal=True)
        with pytest.raises(ConfigurationError, match="exactly one mode"):
            run_grid_worker(get_spec("t2"), params, tmp_path / "w", cache=cache)

    def test_cache_required(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shared ResultCache"):
            run_grid_worker(get_spec("t2"), smoke_params()["t2"], tmp_path / "w",
                            cache=None, steal=True)


class TestCliDistributed:
    def test_steal_run_status_and_reap(self, tmp_path, capsys):
        out = tmp_path / "single"
        assert main(["run", "t2", "--out", str(out), "--quiet"]) == 0
        golden = (out / "BENCH_T2.json").read_bytes()
        capsys.readouterr()

        workers = tmp_path / "workers"
        dist = tmp_path / "dist"
        assert main(["run", "t2", "--workers-dir", str(workers), "--steal",
                     "--out", str(dist), "--quiet"]) == 0
        summary = capsys.readouterr().out
        assert "grid 4/4 done" in summary
        assert (dist / "BENCH_T2.json").read_bytes() == golden

        assert main(["grid", "status", "--workers-dir", str(workers)]) == 0
        status = capsys.readouterr().out
        assert "t2: 4/4 done" in status
        assert "complete" in status

        assert main(["grid", "reap", "--workers-dir", str(workers)]) == 0
        assert "0" in capsys.readouterr().out

    def test_static_shards_via_cli(self, tmp_path, capsys):
        out = tmp_path / "single"
        assert main(["run", "t2", "--out", str(out), "--quiet"]) == 0
        golden = (out / "BENCH_T2.json").read_bytes()
        workers = tmp_path / "workers"
        dist = tmp_path / "dist"
        base = ["run", "t2", "--workers-dir", str(workers),
                "--out", str(dist), "--quiet"]
        assert main(base + ["--worker-id", "1/2"]) == 0
        assert not (dist / "BENCH_T2.json").exists()
        capsys.readouterr()
        assert main(base + ["--worker-id", "2/2"]) == 0
        assert "grid 4/4 done" in capsys.readouterr().out
        assert (dist / "BENCH_T2.json").read_bytes() == golden

    def test_mode_validation(self, tmp_path, capsys):
        workers = str(tmp_path / "w")
        assert main(["run", "t2", "--workers-dir", workers]) == 2
        assert "exactly one mode" in capsys.readouterr().err
        assert main(["run", "t2", "--workers-dir", workers, "--steal",
                     "--worker-id", "1/2"]) == 2
        assert "exactly one mode" in capsys.readouterr().err
        assert main(["run", "t2", "--steal"]) == 2
        assert "need --workers-dir" in capsys.readouterr().err
        assert main(["run", "t2", "--workers-dir", workers, "--steal",
                     "--no-cache"]) == 2
        assert "shared cache" in capsys.readouterr().err
        assert main(["run", "t1", "t2", "--workers-dir", workers, "--steal"]) == 2
        assert "exactly one experiment" in capsys.readouterr().err
