"""DetectorService generically driving registered cores over real transports.

The acceptance case for the registry redesign: a *timed* (non-query)
detector — heartbeat, gossip, phi — runs over the in-memory asyncio
transport through the exact same DetectorService surface as the paper's
time-free detector, and detects a crash.
"""

import asyncio

import pytest

from repro.core.protocol import DetectorConfig
from repro.errors import ConfigurationError
from repro.runtime import DetectorService, LocalCluster, MemoryHub, ServicePacing
from repro.sim.latency import ConstantLatency

# Real-time knobs: fast cadence keeps each scenario to well under a second
# of wall-clock time (these are live asyncio services, not simulations).
TIMED_PARAMS = {
    "heartbeat": {"period": 0.05, "timeout": 0.2},
    "heartbeat-adaptive": {"period": 0.05, "timeout": 0.2},
    "gossip": {"period": 0.05, "timeout": 0.2},
    "phi": {"period": 0.05, "threshold": 3.0, "min_std": 0.01},
}


def run(coro):
    return asyncio.run(coro)


def make_services(detector, params, n=3, f=1, hub=None):
    hub = hub if hub is not None else MemoryHub(latency=ConstantLatency(0.001))
    services = []
    for pid in range(1, n + 1):
        config = DetectorConfig.for_process(pid, range(1, n + 1), f)
        services.append(
            DetectorService.from_registry(
                detector, config, hub.create_transport(pid), **params
            )
        )
    return hub, services


class TestTimedCoresOverMemoryTransport:
    @pytest.mark.parametrize("detector", sorted(TIMED_PARAMS))
    def test_crash_detected(self, detector):
        async def scenario():
            hub, services = make_services(detector, TIMED_PARAMS[detector])
            for service in services:
                await service.start()
            # Let a few heartbeat periods elapse so estimators warm up.
            await asyncio.sleep(0.3)
            assert services[0].suspects() == frozenset()
            hub.crash(3)
            await services[2].stop()
            async with asyncio.timeout(10.0):
                await services[0].wait_until_suspected(3)
                await services[1].wait_until_suspected(3)
            suspected = (services[0].suspects(), services[1].suspects())
            for service in services[:2]:
                await service.stop()
            return suspected

        for suspects in run(scenario()):
            assert suspects == frozenset({3})

    def test_recovered_silence_clears_suspicion(self):
        """A late heartbeat refutes the suspicion (watchers see both edges)."""

        async def scenario():
            hub, services = make_services("heartbeat", TIMED_PARAMS["heartbeat"])
            for service in services:
                await service.start()
            queue = services[0].watch()
            hub.crash(3)
            await services[2].stop()
            async with asyncio.timeout(10.0):
                first = await queue.get()
            for service in services[:2]:
                await service.stop()
            return first

        assert 3 in run(scenario())


class TestFromRegistryValidation:
    def test_unknown_detector_raises(self):
        async def scenario():
            hub = MemoryHub()
            config = DetectorConfig.for_process(1, (1, 2, 3), 1)
            DetectorService.from_registry("nope", config, hub.create_transport(1))

        with pytest.raises(ConfigurationError, match="unknown detector"):
            run(scenario())

    def test_unknown_param_raises(self):
        async def scenario():
            hub = MemoryHub()
            config = DetectorConfig.for_process(1, (1, 2, 3), 1)
            DetectorService.from_registry(
                "heartbeat", config, hub.create_transport(1), grace=1.0
            )

        with pytest.raises(ConfigurationError, match="unknown parameter"):
            run(scenario())

    def test_query_pacing_knobs_become_service_pacing(self):
        """grace/idle/retry params of a query family drive the real loop."""

        async def scenario():
            hub = MemoryHub()
            config = DetectorConfig.for_process(1, (1, 2, 3), 1)
            return DetectorService.from_registry(
                "time-free", config, hub.create_transport(1),
                grace=0.01, idle=0.02, retry=0.5,
            )

        service = run(scenario())
        assert service.pacing == ServicePacing(grace=0.01, idle=0.02, retry=0.5)

    def test_pacing_and_pacing_params_conflict(self):
        async def scenario():
            hub = MemoryHub()
            config = DetectorConfig.for_process(1, (1, 2, 3), 1)
            DetectorService.from_registry(
                "time-free", config, hub.create_transport(1),
                pacing=ServicePacing(grace=0.01), retry=0.5,
            )

        with pytest.raises(ConfigurationError, match="not both"):
            run(scenario())

    def test_query_family_via_registry_still_time_free(self):
        """from_registry('time-free') behaves like the classic constructor."""

        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.001))
            services = []
            for pid in (1, 2, 3):
                config = DetectorConfig.for_process(pid, (1, 2, 3), 1)
                services.append(
                    DetectorService.from_registry(
                        "time-free",
                        config,
                        hub.create_transport(pid),
                        pacing=ServicePacing(grace=0.01),
                    )
                )
            for service in services:
                await service.start()
            hub.crash(3)
            await services[2].stop()
            async with asyncio.timeout(10.0):
                await services[0].wait_until_suspected(3)
            rounds = services[0].rounds_completed
            for service in services[:2]:
                await service.stop()
            return rounds

        assert run(scenario()) > 0


class TestLocalClusterPacing:
    def test_partial_pacing_knobs_merge_with_cluster_defaults(self):
        """Setting one knob must not reset the others to sim-scale values."""

        async def scenario():
            cluster = LocalCluster(n=3, f=1, detector_params={"idle": 0.05})
            return cluster.services[1].pacing

        pacing = run(scenario())
        assert pacing == ServicePacing(grace=0.02, idle=0.05, retry=None)

    def test_pacing_knobs_for_timed_families_stay_loud(self):
        async def scenario():
            LocalCluster(
                n=3, f=1, detector="heartbeat", detector_params={"grace": 0.5}
            )

        with pytest.raises(ConfigurationError, match="unknown parameter"):
            run(scenario())


class TestLocalClusterDetectorAxis:
    def test_heartbeat_cluster_end_to_end(self):
        async def scenario():
            cluster = LocalCluster(
                n=3,
                f=1,
                detector="heartbeat",
                detector_params=TIMED_PARAMS["heartbeat"],
                latency=ConstantLatency(0.001),
            )
            await cluster.start()
            cluster.crash(3)
            async with asyncio.timeout(10.0):
                await cluster.until_all_suspect(3)
            result = {pid: cluster.suspects_of(pid) for pid in (1, 2)}
            await cluster.stop()
            return result

        result = run(scenario())
        assert result == {1: frozenset({3}), 2: frozenset({3})}

    def test_default_cluster_unchanged(self):
        async def scenario():
            cluster = LocalCluster(n=3, f=1, latency=ConstantLatency(0.001))
            assert cluster.detector_kind == "time-free"
            await cluster.start()
            cluster.crash(2)
            async with asyncio.timeout(10.0):
                await cluster.until_suspected(observer=1, target=2)
            await cluster.stop()
            return True

        assert run(scenario()) is True
