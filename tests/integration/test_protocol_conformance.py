"""Registry-parametrized conformance battery for consensus protocols.

Every protocol registered in :mod:`repro.consensus` — built-in or plugin —
must honour the same sans-I/O contract, asserted uniformly so a new
registration is tested for free:

* **determinism** — ``propose`` / ``on_message`` / ``poke`` are pure
  functions of the participant's history and the oracle's answers: two
  participants fed the identical sequence emit identical effects;
* **effect well-formedness** — every emitted effect is a ``SendTo`` to a
  *member*, never to the participant itself, carrying a registered
  consensus ballot kind;
* **decide-once** — a decision, once taken, never changes, and a decided
  participant emits no further ballots;
* **solvability** — under a well-behaved oracle and a reliable synchronous
  delivery order, every participant decides on a proposed value.
"""

import pytest

from repro.consensus import (
    ConsensusContext,
    ConsensusOracle,
    all_protocols,
    build_protocol,
    get_protocol,
    protocol_keys,
    register_protocol,
)
from repro.consensus.messages import Ack, Decide, Estimate, Nack, Proposal
from repro.core.effects import SendTo
from repro.errors import ConfigurationError

N = 5
F = 2
MEMBERS = tuple(range(1, N + 1))
BALLOT_KINDS = (Estimate, Proposal, Ack, Nack, Decide)


def benign_oracle() -> ConsensusOracle:
    """A well-behaved oracle: nobody suspected, the first member leads."""
    return ConsensusOracle(suspects=lambda: frozenset(), leader=lambda: 1)


def build(key: str, pid: int, oracle: ConsensusOracle | None = None):
    context = ConsensusContext(process_id=pid, membership=frozenset(MEMBERS), f=F)
    return build_protocol(key, context, oracle or benign_oracle())


def run_synchronously(key: str, proposals: dict) -> dict:
    """All-propose, deliver every ballot in FIFO order until quiescence."""
    participants = {pid: build(key, pid) for pid in MEMBERS}
    queue: list = []

    def submit(sender, effects):
        queue.extend((sender, e.destination, e.message) for e in effects)

    for pid, participant in participants.items():
        submit(pid, participant.propose(proposals[pid]))
    while queue:
        sender, dst, message = queue.pop(0)
        submit(dst, participants[dst].on_message(sender, message))
    return participants


@pytest.fixture(params=sorted(all_protocols()))
def protocol(request):
    return request.param


class TestConformance:
    def test_registered_spec_shape(self, protocol):
        spec = get_protocol(protocol)
        assert spec.key == protocol
        assert spec.title and spec.summary
        assert spec.oracle in ("suspects", "leader")
        assert isinstance(spec.param_names(), frozenset)

    def test_propose_is_deterministic(self, protocol):
        first = build(protocol, 2).propose("v")
        second = build(protocol, 2).propose("v")
        assert first == second

    def test_replayed_history_gives_identical_effects(self, protocol):
        # Record one synchronous run's delivery history at process 3, then
        # replay it into a fresh participant: every step must reproduce the
        # original effects exactly.
        participants = {pid: build(protocol, pid) for pid in MEMBERS}
        queue: list = []
        history: list = []  # (sender, message, effects) at process 3

        def submit(sender, effects):
            queue.extend((sender, e.destination, e.message) for e in effects)

        for pid, participant in participants.items():
            effects = participant.propose(f"v{pid}")
            if pid == 3:
                history.append(("propose", f"v{pid}", list(effects)))
            submit(pid, effects)
        while queue:
            sender, dst, message = queue.pop(0)
            effects = participants[dst].on_message(sender, message)
            if dst == 3:
                history.append((sender, message, list(effects)))
            submit(dst, effects)

        replayed = build(protocol, 3)
        for sender, message, expected in history:
            if sender == "propose":
                assert replayed.propose(message) == expected
            else:
                assert replayed.on_message(sender, message) == expected

    def test_poke_without_news_is_a_quiet_no_op(self, protocol):
        participant = build(protocol, 2)
        participant.propose("v")
        assert participant.poke() == participant.poke() == []

    def test_effects_are_well_formed(self, protocol):
        participants = {pid: build(protocol, pid) for pid in MEMBERS}
        queue: list = []

        def check_and_submit(sender, effects):
            for effect in effects:
                assert isinstance(effect, SendTo), f"foreign effect {effect!r}"
                assert effect.destination in MEMBERS
                assert effect.destination != sender, "self-sends must stay local"
                assert isinstance(effect.message, BALLOT_KINDS)
            queue.extend((sender, e.destination, e.message) for e in effects)

        for pid, participant in participants.items():
            check_and_submit(pid, participant.propose(f"v{pid}"))
        while queue:
            sender, dst, message = queue.pop(0)
            check_and_submit(dst, participants[dst].on_message(sender, message))

    def test_solvable_under_a_benign_oracle(self, protocol):
        proposals = {pid: f"v{pid}" for pid in MEMBERS}
        participants = run_synchronously(protocol, proposals)
        decisions = {p.decision for p in participants.values() if p.decided}
        assert all(p.decided for p in participants.values())
        assert len(decisions) == 1
        assert decisions <= set(proposals.values())

    def test_decide_once_and_then_silent(self, protocol):
        participants = run_synchronously(
            protocol, {pid: f"v{pid}" for pid in MEMBERS}
        )
        target = participants[4]
        decision = target.decision
        # Conflicting and duplicate late traffic must change nothing and
        # emit nothing (the decided participant has halted).
        assert target.on_message(2, Decide(sender=2, value="other")) == []
        assert target.on_message(2, Proposal(sender=2, round=99, value="x")) == []
        assert target.poke() == []
        assert target.decision == decision


class TestRegistry:
    def test_builtin_keys(self):
        assert protocol_keys() == ["ct", "omega"]

    def test_lookup_is_case_insensitive(self):
        assert get_protocol("CT") is get_protocol("ct")

    def test_unknown_key_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="registered"):
            get_protocol("paxos")

    def test_reregistering_same_spec_is_idempotent(self):
        spec = get_protocol("ct")
        assert register_protocol(spec) is spec

    def test_shadowing_a_key_is_rejected(self):
        from dataclasses import replace

        clone = replace(get_protocol("ct"), title="impostor")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol(clone)

    def test_unknown_param_overrides_are_rejected(self):
        with pytest.raises(ConfigurationError, match="fast_round"):
            get_protocol("omega").make_params(nope=1)

    def test_oracle_view_is_validated(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError, match="oracle"):
            replace(get_protocol("ct"), key="bad", oracle="entrails")

    def test_omega_params_route_through_build(self):
        participant = build_protocol(
            "omega",
            ConsensusContext(process_id=1, membership=frozenset(MEMBERS), f=F),
            benign_oracle(),
            fast_round=False,
        )
        # With the fast round disabled, round 1 collects estimates like CT.
        assert participant._collects_estimates(1) is True
