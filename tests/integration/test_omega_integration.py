"""Leader election (Omega) on full simulated runs."""

from repro.sim import ExponentialLatency, QueryPacing, SimCluster
from repro.sim.cluster import time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.latency import BiasedLatency, UniformLatency


def build(n, f, *, fault_plan=None, seed=1, latency=None):
    return SimCluster(
        n=n,
        driver_factory=time_free_driver_factory(
            f, QueryPacing(grace=0.05), with_omega=True
        ),
        latency=latency if latency is not None else ExponentialLatency(0.001),
        seed=seed,
        fault_plan=fault_plan,
        start_stagger=0.05,
    )


def leaders_of(cluster, exclude=()):
    return {
        pid: elector.leader()
        for pid, elector in cluster.electors().items()
        if pid not in exclude
    }


class TestLeaderElection:
    def test_fault_free_run_converges_to_common_leader(self):
        cluster = build(6, 2)
        cluster.run(until=10.0)
        leaders = leaders_of(cluster)
        assert len(set(leaders.values())) == 1

    def test_leader_is_correct_process(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 2.0)])
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=20.0)
        leaders = leaders_of(cluster, exclude={1})
        assert len(set(leaders.values())) == 1
        leader = next(iter(leaders.values()))
        assert leader in cluster.correct_processes()

    def test_crashed_initial_leader_is_replaced(self):
        # Process 1 starts as everyone's leader (min id, zero accusations);
        # after it crashes its accusations grow every round, so the common
        # choice must move on.
        plan = FaultPlan.of(crashes=[CrashFault(1, 2.0)])
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=20.0)
        for pid, leader in leaders_of(cluster, exclude={1}).items():
            assert leader != 1

    def test_accusations_are_shared_via_gossip(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 2.0)])
        cluster = build(5, 1, fault_plan=plan)
        cluster.run(until=20.0)
        counts = {
            pid: elector.accusations()[3]
            for pid, elector in cluster.electors().items()
            if pid != 3
        }
        # Everyone has a large, and close-to-identical, accusation count.
        assert all(count > 5 for count in counts.values())
        assert max(counts.values()) - min(counts.values()) <= 3

    def test_responsive_process_becomes_leader_despite_higher_id(self):
        # Sabotage p1 and p2 (slow links) while p3 is fast: accusations pile
        # on the slow pair and the stable leader is the responsive p3.
        latency = BiasedLatency(
            UniformLatency(0.001, 0.004),
            favored=frozenset({1, 2}),
            speedup=0.05,  # 20x slowdown
            bidirectional=True,
        )
        cluster = build(6, 2, latency=latency, seed=4)
        cluster.run(until=30.0)
        leaders = leaders_of(cluster)
        assert len(set(leaders.values())) == 1
        assert next(iter(leaders.values())) not in {1, 2}
