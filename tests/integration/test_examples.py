"""Smoke tests: the shipped examples actually run.

Only the fast examples are executed end-to-end (the bake-off and the full
MANET study take tens of seconds and are exercised via their underlying
experiment modules elsewhere); the rest are checked for importability.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamplesRun:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "strong completeness reached" in result.stdout

    def test_consensus_cluster(self):
        result = run_example("consensus_cluster.py")
        assert result.returncode == 0, result.stderr
        assert "recovery speedup" in result.stdout

    def test_udp_cluster(self):
        result = run_example("udp_cluster.py")
        assert result.returncode == 0, result.stderr
        assert "crash detected over UDP" in result.stdout

    def test_qos_scatter(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "qos_scatter.py"), str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "scatter table artifact" in result.stdout
        assert "fastest detection:" in result.stdout
        assert (tmp_path / "BENCH_Q1.json").exists()


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        ["manet_density_study.py", "detector_bakeoff.py"],
    )
    def test_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
