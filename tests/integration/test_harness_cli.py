"""End-to-end tests of ``python -m repro`` (the harness CLI).

A tiny T2 grid keeps the run under a few seconds; the critical acceptance
property — rerunning the same grid is served from cache and rewrites a
byte-identical artifact — is asserted on real experiment output.
"""

import json

import pytest

from repro.experiments import t2_impact_of_f
from repro.harness import ResultCache, run_grid, write_artifact
from repro.harness.cli import main


class TestCliList:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("t1", "t2", "f2", "e2", "a2"):
            assert exp_id in out


class TestCliRun:
    def test_unknown_experiment_fails(self, tmp_path, capsys):
        assert main(["run", "zz", "--out", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_artifact_and_caches(self, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["run", "t2", "--workers", "2", "--out", str(out), "--quiet"]
        assert main(argv) == 0
        artifact = out / "BENCH_T2.json"
        first = artifact.read_bytes()
        payload = json.loads(first)
        assert payload["experiment"] == "t2"
        assert payload["schema"] == "repro-bench/1"
        assert len(payload["cells"]) == len(t2_impact_of_f.T2Params().f_values)
        assert payload["tables"][0]["rows"]

        # Second run: every cell cached, artifact byte-identical.
        assert main(argv) == 0
        summary = capsys.readouterr().out
        assert "(4 cached)" in summary.splitlines()[-1]
        assert artifact.read_bytes() == first

    def test_seed_override_changes_results(self, tmp_path):
        out = tmp_path / "results"
        assert main(["run", "t2", "--out", str(out), "--quiet"]) == 0
        first = (out / "BENCH_T2.json").read_bytes()
        assert main(["run", "t2", "--out", str(out), "--quiet", "--seed", "2"]) == 0
        assert (out / "BENCH_T2.json").read_bytes() != first


class TestGridEquivalence:
    """The harness reproduces exactly what the legacy run() wrappers report."""

    @pytest.mark.parametrize("workers", [0, 2])
    def test_t2_table_matches_run_wrapper(self, workers, tmp_path):
        params = t2_impact_of_f.T2Params(n=12, f_values=(1, 5), horizon=25.0)
        via_wrapper = t2_impact_of_f.run(params)
        cache = ResultCache(tmp_path / "cache")
        via_grid = run_grid(
            t2_impact_of_f.SPEC, params, workers=workers, cache=cache
        ).tables()[0]
        assert via_grid.headers == via_wrapper.headers
        assert [list(row) for row in via_grid.rows] == [
            list(row) for row in via_wrapper.rows
        ]

    def test_artifact_of_cached_grid_is_byte_identical(self, tmp_path):
        params = t2_impact_of_f.T2Params(n=10, f_values=(1, 3), horizon=20.0)
        cache = ResultCache(tmp_path / "cache")
        first = write_artifact(
            tmp_path, run_grid(t2_impact_of_f.SPEC, params, cache=cache)
        ).read_bytes()
        second = write_artifact(
            tmp_path, run_grid(t2_impact_of_f.SPEC, params, cache=cache)
        ).read_bytes()
        assert first == second
