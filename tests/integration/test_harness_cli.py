"""End-to-end tests of ``python -m repro`` (the harness CLI).

A tiny T2 grid keeps the run under a few seconds; the critical acceptance
property — rerunning the same grid is served from cache and rewrites a
byte-identical artifact — is asserted on real experiment output.
"""

import json

import pytest

from repro.experiments import t2_impact_of_f
from repro.harness import ResultCache, run_grid, write_artifact
from repro.harness.cli import main


class TestCliList:
    def test_list_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("t1", "t2", "f2", "e2", "a2"):
            assert exp_id in out

    def test_detectors_lists_every_registered_family(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        for key in ("time-free", "partial", "heartbeat", "gossip", "phi"):
            assert key in out
        assert "◇S" in out and "◇P" in out

    def test_experiments_lists_all_thirteen_with_axes_and_sizes(self, capsys):
        assert main(["experiments"]) == 0
        lines = capsys.readouterr().out.splitlines()
        body = [line for line in lines[1:] if line.strip()]
        assert len(body) == 13
        ids = [line.split()[0] for line in body]
        assert ids == [
            "t1", "t2", "t3", "t4", "f1", "f2", "f3", "e1", "e2", "a1", "a2",
            "q1", "c1",
        ]
        by_id = dict(zip(ids, body))
        assert "n×detector×trial" in by_id["t1"]
        assert "sweep×stress×detector" in by_id["f2"]
        assert "detector×trial" in by_id["q1"]
        assert "fault×detector" in by_id["c1"]

    def test_protocols_lists_every_registered_protocol(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for key in ("ct", "omega"):
            assert key in out
        assert "suspects" in out and "leader" in out
        assert "fast_round" in out


class TestCliDryRun:
    def test_dry_run_prints_cells_without_artifacts(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["run", "t2", "--dry-run", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "t2: 4 cells (nothing executed)" in printed
        assert '{"f": 1}' in printed and "seed=" in printed
        assert not (out / "BENCH_T2.json").exists()

    def test_dry_run_reflects_param_and_detector_overrides(self, tmp_path, capsys):
        assert main(["run", "t1", "--detector", "phi", "-p", "sizes=[6]",
                     "-p", "trials=1", "--dry-run", "--out", str(tmp_path)]) == 0
        printed = capsys.readouterr().out
        assert "t1: 1 cells (nothing executed)" in printed
        assert '"detector": "phi"' in printed

    def test_dry_run_previews_a_static_shard(self, tmp_path, capsys):
        assert main(["run", "t2", "--worker-id", "2/3", "--dry-run",
                     "--out", str(tmp_path)]) == 0
        printed = capsys.readouterr().out
        # t2's smoke-free default grid has 4 cells: shard 2/3 owns index 1.
        assert "t2: 4 cells; shard 2/3 claims 1 (split 1/3:2, 2/3:1, 3/3:1)" in printed
        cells = [line for line in printed.splitlines() if line.startswith("  [")]
        assert len(cells) == 1 and cells[0].startswith("  [  1]")

    def test_dry_run_rejects_malformed_worker_id(self, tmp_path, capsys):
        assert main(["run", "t2", "--worker-id", "4/2", "--dry-run",
                     "--out", str(tmp_path)]) == 2
        assert "out of range" in capsys.readouterr().err


class TestCliRun:
    def test_unknown_experiment_fails(self, tmp_path, capsys):
        assert main(["run", "zz", "--out", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_artifact_and_caches(self, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["run", "t2", "--workers", "2", "--out", str(out), "--quiet"]
        assert main(argv) == 0
        artifact = out / "BENCH_T2.json"
        first = artifact.read_bytes()
        payload = json.loads(first)
        assert payload["experiment"] == "t2"
        assert payload["schema"] == "repro-bench/1"
        assert len(payload["cells"]) == len(t2_impact_of_f.T2Params().f_values)
        assert payload["tables"][0]["rows"]

        # Second run: every cell cached, artifact byte-identical.
        assert main(argv) == 0
        summary = capsys.readouterr().out
        assert "(4 cached)" in summary.splitlines()[-1]
        assert artifact.read_bytes() == first

    def test_seed_override_changes_results(self, tmp_path):
        out = tmp_path / "results"
        assert main(["run", "t2", "--out", str(out), "--quiet"]) == 0
        first = (out / "BENCH_T2.json").read_bytes()
        assert main(["run", "t2", "--out", str(out), "--quiet", "--seed", "2"]) == 0
        assert (out / "BENCH_T2.json").read_bytes() != first


# Small t1 cell so each detector-sweep invocation stays fast.
T1_SMALL = ["-p", "sizes=[6]", "-p", "trials=1", "-p", "horizon=15.0", "-p", "crash_at=4.0"]


class TestDetectorSweep:
    """`repro run EXP --detector KEY...` — no per-experiment code involved."""

    @pytest.mark.parametrize("detector", ["heartbeat", "phi"])
    def test_t1_sweeps_any_registered_detector(self, detector, tmp_path):
        out = tmp_path / "results"
        argv = ["run", "t1", "--detector", detector, *T1_SMALL, "--out", str(out), "--quiet"]
        assert main(argv) == 0
        payload = json.loads((out / "BENCH_T1.json").read_text())
        assert payload["params"]["detectors"] == [detector]
        assert [cell["coords"]["detector"] for cell in payload["cells"]] == [detector]
        assert f"{detector} mean (s)" in payload["tables"][0]["headers"]
        # The crash was actually detected: a finite latency in every row.
        for row in payload["tables"][0]["rows"]:
            assert row[2] is not None and 0.0 < row[2] < 15.0

    def test_multiple_detectors_in_one_grid(self, tmp_path):
        out = tmp_path / "results"
        argv = [
            "run", "t1", "--detector", "heartbeat", "--detector", "heartbeat-adaptive",
            *T1_SMALL, "--out", str(out), "--quiet",
        ]
        assert main(argv) == 0
        payload = json.loads((out / "BENCH_T1.json").read_text())
        assert payload["params"]["detectors"] == ["heartbeat", "heartbeat-adaptive"]
        assert len(payload["cells"]) == 2

    def test_single_detector_experiments_accept_an_override(self, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["run", "t2", "--detector", "heartbeat", "-p", "n=6",
                "-p", "f_values=[1]", "-p", "horizon=10.0", "-p", "crash_at=3.0",
                "--out", str(out), "--quiet"]
        assert main(argv) == 0
        payload = json.loads((out / "BENCH_T2.json").read_text())
        assert payload["params"]["detector"] == "heartbeat"

    def test_unknown_detector_fails_cleanly(self, tmp_path, capsys):
        argv = ["run", "t1", "--detector", "nope", "--out", str(tmp_path), "--quiet"]
        assert main(argv) == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_detector_missing_required_param_fails_cleanly(self, tmp_path, capsys):
        # `partial` is registered (passes key validation) but needs `d`,
        # which t1 cannot supply — must exit 2, not traceback.
        argv = ["run", "t1", "--detector", "partial", "--out", str(tmp_path), "--quiet"]
        assert main(argv) == 2
        assert "needs the parameter" in capsys.readouterr().err

    def test_bare_string_on_sequence_field_fails_cleanly(self, tmp_path, capsys):
        argv = ["run", "t1", "-p", "detectors=phi", "--out", str(tmp_path), "--quiet"]
        assert main(argv) == 2
        assert "expects a list" in capsys.readouterr().err

    def test_multiple_detectors_rejected_on_single_axis(self, tmp_path, capsys):
        argv = [
            "run", "t2", "--detector", "heartbeat", "--detector", "phi",
            "--out", str(tmp_path), "--quiet",
        ]
        assert main(argv) == 2
        assert "single detector" in capsys.readouterr().err

    def test_override_validation_precedes_any_grid_run(self, tmp_path, capsys):
        """A bad override on a later grid must fail before the first runs."""
        out = tmp_path / "results"
        argv = [
            "run", "t1", "t2", "--detector", "heartbeat", "--detector", "phi",
            "--out", str(out), "--quiet",
        ]
        assert main(argv) == 2  # t2 has a single-detector axis
        assert "single detector" in capsys.readouterr().err
        assert not (out / "BENCH_T1.json").exists()

    def test_unknown_param_fails_cleanly(self, tmp_path, capsys):
        argv = ["run", "t1", "-p", "bogus=1", "--out", str(tmp_path), "--quiet"]
        assert main(argv) == 2
        assert "unknown parameter" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_writes_micro_artifact(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["bench", "--events", "2000", "--only", "chain,batch",
                     "--out", str(out)]) == 0
        payload = json.loads((out / "BENCH_MICRO.json").read_text())
        assert payload["experiment"] == "micro"
        assert payload["schema"].startswith("repro-bench/1")
        workloads = [cell["coords"]["workload"] for cell in payload["cells"]]
        assert workloads == ["chain", "batch"]
        for cell in payload["cells"]:
            assert cell["value"]["seconds"] > 0
            assert cell["value"]["kev_per_s"] > 0
        assert payload["tables"][0]["headers"] == ["workload", "events", "seconds", "kev/s"]
        assert "BENCH_MICRO.json" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        assert main(["bench", "--only", "nope", "--out", str(tmp_path)]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_and_prune_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["run", "t2", "-p", "n=6", "-p", "f_values=[1]",
                     "-p", "horizon=10.0", "--out", str(out), "--quiet"]) == 0
        cache_dir = str(out / ".cache")
        assert main(["cache", "info", "--dir", cache_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "prune", "--dir", cache_dir, "--max-size-mb", "0"]) == 0
        assert "pruned 1 entries" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_prune_without_caps_fails_cleanly(self, tmp_path, capsys):
        assert main(["cache", "prune", "--dir", str(tmp_path)]) == 2
        assert "prune needs" in capsys.readouterr().err


class TestGridEquivalence:
    """The harness reproduces exactly what the legacy run() wrappers report."""

    @pytest.mark.parametrize("workers", [0, 2])
    def test_t2_table_matches_run_wrapper(self, workers, tmp_path):
        params = t2_impact_of_f.T2Params(n=12, f_values=(1, 5), horizon=25.0)
        via_wrapper = t2_impact_of_f.run(params)
        cache = ResultCache(tmp_path / "cache")
        via_grid = run_grid(
            t2_impact_of_f.SPEC, params, workers=workers, cache=cache
        ).tables()[0]
        assert via_grid.headers == via_wrapper.headers
        assert [list(row) for row in via_grid.rows] == [
            list(row) for row in via_wrapper.rows
        ]

    def test_artifact_of_cached_grid_is_byte_identical(self, tmp_path):
        params = t2_impact_of_f.T2Params(n=10, f_values=(1, 3), horizon=20.0)
        cache = ResultCache(tmp_path / "cache")
        first = write_artifact(
            tmp_path, run_grid(t2_impact_of_f.SPEC, params, cache=cache)
        ).read_bytes()
        second = write_artifact(
            tmp_path, run_grid(t2_impact_of_f.SPEC, params, cache=cache)
        ).read_bytes()
        assert first == second


class TestBenchCheck:
    """`repro bench --check`: the kev/s regression gate."""

    def _floors(self, tmp_path, floors):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({
            "schema": "repro-bench-floors/1",
            "floors_kev_per_s": floors,
        }))
        return str(path)

    def test_passing_gate_exits_zero(self, tmp_path, capsys):
        floors = self._floors(tmp_path, {"chain": 0.001})
        assert main(["bench", "--events", "2000", "--only", "chain",
                     "--out", str(tmp_path), "--quiet",
                     "--check", "--floors", floors]) == 0
        assert "bench check OK" in capsys.readouterr().out

    def test_regression_below_floor_exits_one(self, tmp_path, capsys):
        floors = self._floors(tmp_path, {"chain": 1e12})
        assert main(["bench", "--events", "2000", "--only", "chain",
                     "--out", str(tmp_path), "--quiet",
                     "--check", "--floors", floors]) == 1
        assert "below the committed floor" in capsys.readouterr().err

    def test_committed_floors_cover_every_workload(self):
        from repro.harness.microbench import WORKLOADS, load_floors

        floors = load_floors("benchmarks/bench_floors.json")
        assert set(floors) == set(WORKLOADS)

    def test_floor_for_missing_workload_fails(self, tmp_path, capsys):
        # A floor naming a workload that was not run must fail loudly —
        # renaming a workload cannot silently lose its gate.  (The CLI
        # filters floors to --only selections; this exercises the API.)
        from repro.harness.microbench import check_floors

        payload = {"cells": [{"coords": {"workload": "chain"},
                              "value": {"kev_per_s": 100.0}}]}
        failures = check_floors(payload, {"gone": 1.0})
        assert failures and "was not run" in failures[0]

    def test_bad_floors_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--events", "2000", "--only", "chain",
                     "--out", str(tmp_path), "--quiet",
                     "--check", "--floors", missing]) == 2
        assert "floors file not found" in capsys.readouterr().err
