"""Retransmission under loss, and the ◇P-like regime under global RP."""

import asyncio

import pytest

from repro.core.properties import responsive_processes
from repro.errors import ConfigurationError
from repro.metrics import detection_stats, mistake_stats
from repro.runtime import LocalCluster, ServicePacing
from repro.sim import ExponentialLatency, QueryPacing, SimCluster, UniformLatency
from repro.sim.cluster import time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan


class TestRetryOnSimulator:
    def build(self, *, loss_rate, retry, seed=5):
        pacing = QueryPacing(grace=0.1, idle=0.05, retry=retry)
        return SimCluster(
            n=8,
            driver_factory=time_free_driver_factory(2, pacing),
            latency=ExponentialLatency(0.001),
            seed=seed,
            fault_plan=FaultPlan.of(crashes=[CrashFault(8, 10.0)]),
            loss_rate=loss_rate,
            start_stagger=0.1,
        )

    def test_no_retries_on_reliable_channels(self):
        cluster = self.build(loss_rate=0.0, retry=0.5)
        cluster.run(until=20.0)
        assert all(driver.retries_sent == 0 for driver in cluster.drivers.values())

    def test_rounds_stall_under_loss_without_retry(self):
        cluster = self.build(loss_rate=0.25, retry=None)
        cluster.run(until=30.0)
        late = [r for r in cluster.trace.rounds if r.finished_at > 22.5]
        stalled = cluster.correct_processes() - {r.querier for r in late}
        assert stalled, "expected at least one process to wedge below quorum"

    def test_retry_restores_liveness_and_completeness(self):
        cluster = self.build(loss_rate=0.25, retry=0.3)
        cluster.run(until=30.0)
        late = [r for r in cluster.trace.rounds if r.finished_at > 22.5]
        assert {r.querier for r in late} == cluster.correct_processes()
        stats = detection_stats(cluster.trace, 8, 10.0, cluster.correct_processes())
        assert stats.detected_by_all
        assert any(driver.retries_sent > 0 for driver in cluster.drivers.values())

    def test_retry_validation(self):
        with pytest.raises(ConfigurationError):
            QueryPacing(retry=0.0)
        with pytest.raises(ConfigurationError):
            ServicePacing(retry=-1.0)


class TestRetryOnAsyncioRuntime:
    def test_lossy_hub_with_retry_still_detects(self):
        async def scenario():
            from repro.sim.latency import ConstantLatency

            cluster = LocalCluster(
                n=4,
                f=1,
                latency=ConstantLatency(0.001),
                loss_rate=0.2,
                pacing=ServicePacing(grace=0.02, retry=0.1),
                seed=9,
            )
            await cluster.start()
            await asyncio.sleep(0.2)
            cluster.crash(4)
            await cluster.until_all_suspect(4, timeout=20.0)
            suspects = {pid: cluster.suspects_of(pid) for pid in (1, 2, 3)}
            await cluster.stop()
            return suspects

        suspects = asyncio.run(scenario())
        assert all(4 in s for s in suspects.values())


class TestDiamondPRegime:
    """When *every* correct process satisfies RP, accuracy strengthens:
    eventually no correct process is suspected at all (◇P behavior)."""

    def build(self, fault_plan=None):
        # Bounded delays well inside the grace window: every response
        # always arrives in time, so RP holds for every correct process.
        return SimCluster(
            n=8,
            driver_factory=time_free_driver_factory(3, QueryPacing(grace=0.5)),
            latency=UniformLatency(0.001, 0.05),
            seed=11,
            fault_plan=fault_plan,
            start_stagger=0.5,
        )

    def test_no_correct_process_is_ever_suspected(self):
        cluster = self.build()
        cluster.run(until=20.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=20.0)
        assert stats.count == 0

    def test_oracle_certifies_every_correct_process_responsive(self):
        cluster = self.build()
        cluster.run(until=20.0)
        # strict=False: the accuracy-relevant notion of "winning" is making
        # it into the terminated query's rec_from (incl. grace extras) —
        # that is the set suspicions are raised from.
        responsive = responsive_processes(
            cluster.trace.rounds,
            correct=cluster.correct_processes(),
            min_suffix=3,
            strict=False,
        )
        assert responsive == cluster.correct_processes()

    def test_strict_first_quorum_membership_rotates_under_uniform_delays(self):
        # Sanity of the strict/non-strict distinction: with i.i.d. uniform
        # delays nobody wins the strict first-(n-f) set forever.
        cluster = self.build()
        cluster.run(until=20.0)
        strict = responsive_processes(
            cluster.trace.rounds,
            correct=cluster.correct_processes(),
            min_suffix=10,
            strict=True,
        )
        assert strict == frozenset()

    def test_crashes_are_still_the_only_suspicions(self):
        plan = FaultPlan.of(crashes=[CrashFault(7, 5.0), CrashFault(8, 8.0)])
        cluster = self.build(fault_plan=plan)
        cluster.run(until=25.0)
        for pid in cluster.correct_processes():
            assert cluster.suspects_of(pid) == frozenset({7, 8})
