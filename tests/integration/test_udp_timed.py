"""UDP end-to-end smoke test for the *timed* detector families.

The query-core-over-UDP path is covered by ``test_runtime_asyncio``; this
is the missing half (ROADMAP item): a heartbeat-family core running over
real localhost UDP sockets via ``DetectorService.from_registry`` — encode,
datagram, decode, timed wake-up loop — asserting logical outcomes only
(who is suspected), never precise timing.
"""

import asyncio

import pytest

from repro.core.protocol import DetectorConfig
from repro.runtime import DetectorService, UdpTransport


def run(coro):
    return asyncio.run(coro)


async def _udp_services(membership, detector, **params):
    """Heartbeat-style services over real UDP sockets, fully wired."""
    transports = {
        pid: UdpTransport(pid, ("127.0.0.1", 0), peers={}) for pid in membership
    }
    services = {}
    for pid in membership:
        config = DetectorConfig(
            process_id=pid, membership=frozenset(membership), f=1
        )
        services[pid] = DetectorService.from_registry(
            detector, config, transports[pid], **params
        )
    # Bind all sockets first, then fill in the peer directories.
    for service in services.values():
        await service.transport.start()
    addresses = {pid: t.local_address for pid, t in transports.items()}
    for pid, transport in transports.items():
        for other, addr in addresses.items():
            if other != pid:
                transport._peers[other] = addr
    for service in services.values():
        await service.start()
    return services


class TestHeartbeatOverUdp:
    def test_quiet_cluster_then_crash_is_suspected(self):
        async def scenario():
            services = await _udp_services(
                {1, 2, 3}, "heartbeat", period=0.02, timeout=0.2
            )
            try:
                await asyncio.sleep(0.4)
                quiet = {pid: services[pid].suspects() for pid in services}
                # Stop 3's service: its heartbeats cease, the survivors'
                # timeouts expire, and 3 must become suspected.
                await services[3].stop()
                async with asyncio.timeout(10.0):
                    await services[1].wait_until_suspected(3)
                    await services[2].wait_until_suspected(3)
                return quiet, services[1].suspects(), services[2].suspects()
            finally:
                for pid in (1, 2):
                    await services[pid].stop()

        quiet, after_1, after_2 = run(scenario())
        assert all(not suspects for suspects in quiet.values()), quiet
        assert 3 in after_1 and 3 in after_2

    @pytest.mark.parametrize("detector", ["heartbeat-adaptive", "gossip"])
    def test_other_timed_families_run_over_udp(self, detector):
        async def scenario():
            services = await _udp_services(
                {1, 2, 3}, detector, period=0.02, timeout=0.3
            )
            try:
                await asyncio.sleep(0.4)
                return {pid: services[pid].suspects() for pid in services}
            finally:
                for service in services.values():
                    await service.stop()

        quiet = run(scenario())
        assert all(not suspects for suspects in quiet.values()), quiet
