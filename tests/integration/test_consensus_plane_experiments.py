"""Integration tests for the c1 consensus-workload presets.

Pins each fault preset's artifact byte-for-byte against the committed
consensus goldens (``tests/goldens/consensus/<preset>/BENCH_C1.json``) and
asserts the headline acceptance properties: decision latency separates
detector families under ``coordcrash``, aborted rounds separate oracle
styles under ``partition``, and agreement + validity hold in every cell of
every preset.
"""

from functools import lru_cache

import pytest

from repro.harness import run_grid, write_artifact
from repro.harness.registry import get_spec

from tests.goldens import CONSENSUS_PRESETS, GOLDEN_DIR, consensus_params


@lru_cache(maxsize=None)
def _consensus_run(preset: str):
    return run_grid(get_spec("c1"), consensus_params()[preset])


def _metric_by_detector(result, metric: str) -> dict:
    return {
        outcome.coords["detector"]: outcome.value[metric]
        for outcome in result.outcomes
    }


@pytest.mark.parametrize("preset", CONSENSUS_PRESETS)
class TestConsensusGoldens:
    def test_artifact_is_byte_identical_to_golden(self, preset, tmp_path):
        path = write_artifact(tmp_path, _consensus_run(preset))
        golden = GOLDEN_DIR / "consensus" / preset / path.name
        assert golden.exists(), (
            f"missing consensus golden for {preset!r}; "
            "run `python -m tests.goldens.regenerate`"
        )
        assert path.read_bytes() == golden.read_bytes(), (
            f"c1[{preset}]: artifact drifted from the committed golden — a "
            "protocol, fault-schedule, seed or scoring change is observable; "
            "regenerate only if intended"
        )

    def test_preset_constructor_matches_golden_params(self, preset):
        from repro.experiments.c1_consensus_qos import C1Params

        built = getattr(C1Params, preset)()
        assert built.faults == (preset,)
        assert get_spec("c1").make_params(preset=preset).faults == (preset,)

    def test_safety_holds_in_every_cell(self, preset):
        # Consensus safety must not depend on detector quality: whatever the
        # oracle said under this fault schedule, no two processes ever
        # decided differently and every decision was somebody's proposal.
        for outcome in _consensus_run(preset).outcomes:
            assert outcome.value["agreement"] is True, outcome.coords
            assert outcome.value["validity"] is True, outcome.coords

    def test_every_cell_reports_workload_metrics(self, preset):
        for outcome in _consensus_run(preset).outcomes:
            value = outcome.value
            assert 0 <= value["decided"] <= 3
            assert value["aborted_rounds"] >= 0
            assert value["consensus_msgs_per_s"] >= 0.0
            if value["query_accuracy"] is not None:
                assert 0.0 <= value["query_accuracy"] <= 1.0


class TestWorkloadSeparation:
    """Acceptance: decision latency / aborted rounds separate >= 3 families."""

    def test_coordcrash_latency_separates_three_families(self):
        # With the round-1 coordinator dead at start the first instance
        # pays each family's full detection latency: query families wait
        # ~one round (Δ + δ), heartbeat waits ~Θ, phi-accrual longer still.
        latency = _metric_by_detector(_consensus_run("coordcrash"), "latency_max")
        assert all(value is not None for value in latency.values()), latency
        distinct = {round(value, 1) for value in latency.values()}
        assert len(distinct) >= 3, (
            f"c1[coordcrash]: latency separates only {len(distinct)} "
            f"families: {latency}"
        )

    def test_coordcrash_query_families_recover_fastest(self):
        latency = _metric_by_detector(_consensus_run("coordcrash"), "latency_max")
        for query_family in ("time-free", "partial"):
            for timed_family in ("heartbeat", "gossip", "phi"):
                assert latency[query_family] < latency[timed_family]

    def test_partition_aborted_rounds_separate_oracle_styles(self):
        # Timer families accuse the unreachable side and churn through
        # nacked rounds; the quorum (query) families just stall — zero
        # oracle-aborted rounds.
        aborted = _metric_by_detector(_consensus_run("partition"), "aborted_rounds")
        assert aborted["time-free"] == 0
        assert aborted["partial"] == 0
        timed = [v for k, v in aborted.items() if k not in ("time-free", "partial")]
        assert timed and all(v >= 3 for v in timed), aborted

    def test_partition_strands_the_in_flight_instance(self):
        # No side of an even split has a majority, and ballots lost inside
        # the window are never retransmitted (crash-stop CT): the instance
        # proposed mid-split stays open for every family.
        decided = _metric_by_detector(_consensus_run("partition"), "decided")
        assert set(decided.values()) == {2}, decided

    def test_crashrec_decisions_recover_via_anti_entropy(self):
        # The volatile victim loses all consensus state; the decision push
        # on suspicion retraction lets it rejoin the sequence, so every
        # family completes all three instances — at recovery-bound latency.
        result = _consensus_run("crashrec")
        decided = _metric_by_detector(result, "decided")
        assert set(decided.values()) == {3}, decided
        latency = _metric_by_detector(result, "latency_max")
        assert all(value > 1.0 for value in latency.values()), latency
