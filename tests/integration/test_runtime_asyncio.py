"""asyncio runtime integration: memory hub, services, UDP transport.

Real (tiny) sleeps are involved; assertions are about *logical* outcomes —
who is suspected, whether suspicion clears — never about precise timing,
which the GIL makes unreliable (quantitative timing lives on the DES).
"""

import asyncio

import pytest

from repro.core.protocol import DetectorConfig
from repro.errors import ConfigurationError, TransportError
from repro.runtime import (
    DetectorService,
    LocalCluster,
    MemoryHub,
    ServicePacing,
    UdpTransport,
)
from repro.sim.latency import ConstantLatency


def run(coro):
    return asyncio.run(coro)


class TestLocalCluster:
    def test_quiet_cluster_has_no_suspicions(self):
        async def scenario():
            cluster = LocalCluster(n=4, f=1, latency=ConstantLatency(0.001), seed=2)
            await cluster.start()
            await asyncio.sleep(0.3)
            try:
                return {pid: cluster.suspects_of(pid) for pid in cluster.membership}
            finally:
                await cluster.stop()

        suspects = run(scenario())
        assert all(not s for s in suspects.values())

    def test_crashed_process_is_suspected_by_all(self):
        async def scenario():
            cluster = LocalCluster(n=5, f=2, latency=ConstantLatency(0.001), seed=3)
            await cluster.start()
            await asyncio.sleep(0.1)
            cluster.crash(3)
            await cluster.until_all_suspect(3, timeout=10.0)
            try:
                return {pid: cluster.suspects_of(pid) for pid in (1, 2, 4, 5)}
            finally:
                await cluster.stop()

        suspects = run(scenario())
        assert all(3 in s for s in suspects.values())

    def test_two_crashes_with_f_two(self):
        async def scenario():
            cluster = LocalCluster(n=6, f=2, latency=ConstantLatency(0.001), seed=4)
            await cluster.start()
            cluster.crash(5)
            cluster.crash(6)
            await cluster.until_all_suspect(5, timeout=10.0)
            await cluster.until_all_suspect(6, timeout=10.0)
            try:
                return cluster.suspects_of(1)
            finally:
                await cluster.stop()

        assert run(scenario()) >= frozenset({5, 6})

    def test_crash_of_unknown_process_rejected(self):
        async def scenario():
            cluster = LocalCluster(n=3, f=1)
            with pytest.raises(ConfigurationError):
                cluster.crash(99)
            await cluster.stop()

        run(scenario())

    def test_needs_two_processes(self):
        with pytest.raises(ConfigurationError):
            LocalCluster(n=1, f=0)


class TestDetectorServiceMechanics:
    def test_watch_stream_reports_changes(self):
        async def scenario():
            cluster = LocalCluster(n=3, f=1, latency=ConstantLatency(0.001), seed=5)
            await cluster.start()
            queue = cluster.services[1].watch()
            cluster.crash(2)
            async with asyncio.timeout(10.0):
                while True:
                    suspects = await queue.get()
                    if 2 in suspects:
                        break
            await cluster.stop()
            return suspects

        assert 2 in run(scenario())

    def test_transport_identity_must_match(self):
        hub = MemoryHub()
        transport = hub.create_transport("a")
        config = DetectorConfig.for_process("b", ["a", "b"], f=1)
        with pytest.raises(ConfigurationError):
            DetectorService(config, transport)

    def test_service_counts_rounds(self):
        async def scenario():
            cluster = LocalCluster(
                n=3,
                f=1,
                latency=ConstantLatency(0.0005),
                pacing=ServicePacing(grace=0.01),
                seed=6,
            )
            await cluster.start()
            await asyncio.sleep(0.3)
            rounds = cluster.services[1].rounds_completed
            await cluster.stop()
            return rounds

        assert run(scenario()) >= 3


class TestMemoryHub:
    def test_loss_free_delivery(self):
        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.0005))
            received = []
            a = hub.create_transport(1)
            b = hub.create_transport(2)
            b.set_handler(lambda src, msg: received.append((src, msg)))
            await a.start()
            await b.start()
            from repro.core.messages import Response

            await a.send(2, Response(sender=1, round_id=7))
            await hub.drain()
            return received

        received = run(scenario())
        assert len(received) == 1
        assert received[0][0] == 1

    def test_crashed_destination_gets_nothing(self):
        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.0005))
            received = []
            a = hub.create_transport(1)
            b = hub.create_transport(2)
            b.set_handler(lambda src, msg: received.append(msg))
            await a.start()
            await b.start()
            hub.crash(2)
            from repro.core.messages import Response

            sent = await a.send(2, Response(sender=1, round_id=1))
            await hub.drain()
            return sent, received

        sent, received = run(scenario())
        assert sent is False
        assert received == []

    def test_duplicate_identity_rejected(self):
        hub = MemoryHub()
        hub.create_transport(1)
        with pytest.raises(TransportError):
            hub.create_transport(1)

    def test_send_before_start_rejected(self):
        async def scenario():
            hub = MemoryHub()
            transport = hub.create_transport(1)
            hub.create_transport(2)
            from repro.core.messages import Response

            with pytest.raises(TransportError):
                await transport.send(2, Response(sender=1, round_id=1))

        run(scenario())


class TestUdpTransport:
    def test_round_trip_over_localhost(self):
        async def scenario():
            from repro.core.messages import Query, Response

            received_a, received_b = [], []
            a = UdpTransport(1, ("127.0.0.1", 0), peers={})
            await a.start()
            addr_a = a.local_address
            b = UdpTransport(2, ("127.0.0.1", 0), peers={1: addr_a})
            await b.start()
            a._peers[2] = b.local_address
            a.set_handler(lambda src, msg: received_a.append((src, msg)))
            b.set_handler(lambda src, msg: received_b.append((src, msg)))
            query = Query(sender=1, round_id=3, suspected=((2, 1),), mistakes=())
            await a.send(2, query)
            for _ in range(100):
                if received_b:
                    break
                await asyncio.sleep(0.01)
            await b.send(1, Response(sender=2, round_id=3))
            for _ in range(100):
                if received_a:
                    break
                await asyncio.sleep(0.01)
            await a.close()
            await b.close()
            return received_a, received_b

        received_a, received_b = run(scenario())
        assert received_b and received_b[0][0] == 1
        assert received_b[0][1].suspected == ((2, 1),)
        assert received_a and received_a[0][1].round_id == 3

    def test_unknown_peer_send_returns_false(self):
        async def scenario():
            transport = UdpTransport(1, ("127.0.0.1", 0), peers={})
            await transport.start()
            from repro.core.messages import Response

            result = await transport.send(9, Response(sender=1, round_id=1))
            await transport.close()
            return result

        assert run(scenario()) is False

    def test_detector_services_over_udp(self):
        async def scenario():
            from repro.core.protocol import DetectorConfig

            membership = frozenset({1, 2, 3})
            transports = {}
            for pid in membership:
                transports[pid] = UdpTransport(pid, ("127.0.0.1", 0), peers={})
            services = {}
            for pid in membership:
                config = DetectorConfig(process_id=pid, membership=membership, f=1)
                services[pid] = DetectorService(
                    config, transports[pid], pacing=ServicePacing(grace=0.01)
                )
            # Bind all sockets first, then fill in the peer directories.
            for service in services.values():
                await service.transport.start()
            addresses = {pid: t.local_address for pid, t in transports.items()}
            for pid, transport in transports.items():
                for other, addr in addresses.items():
                    if other != pid:
                        transport._peers[other] = addr
            for service in services.values():
                await service.start()
            await asyncio.sleep(0.3)
            suspects = {pid: services[pid].suspects() for pid in membership}
            # Kill service 3 and wait for the survivors to notice.
            await services[3].stop()
            async with asyncio.timeout(10.0):
                await services[1].wait_until_suspected(3)
                await services[2].wait_until_suspected(3)
            result = (suspects, services[1].suspects(), services[2].suspects())
            await services[1].stop()
            await services[2].stop()
            return result

        quiet, after_1, after_2 = run(scenario())
        assert all(not s for s in quiet.values())
        assert 3 in after_1 and 3 in after_2

    def test_garbage_datagrams_are_dropped(self):
        async def scenario():
            import socket

            transport = UdpTransport(1, ("127.0.0.1", 0), peers={})
            await transport.start()
            received = []
            transport.set_handler(lambda src, msg: received.append(msg))
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.sendto(b"definitely not json", transport.local_address)
            sock.close()
            await asyncio.sleep(0.1)
            await transport.close()
            return received

        assert run(scenario()) == []
