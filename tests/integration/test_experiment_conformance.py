"""Registry-parametrized conformance suite for every registered experiment.

The contract every :class:`~repro.experiments.api.ExperimentSpec` must
honour, asserted uniformly so a new registration is tested for free:

* the grid is non-empty and has no duplicate cells (under default *and*
  smoke params), and its coordinate names match the declared axes;
* ``run_cell`` is a pure function of ``(params, coords, seed)`` — the
  same cell evaluated twice gives the identical (normalised) value;
* ``tabulate`` accepts its own grid's values and yields populated tables;
* every declared metric actually appears in every cell's value;
* the legacy 11 reproduce their committed golden artifacts **byte for
  byte** (cell ordering, per-cell seeds, table text — the refactor-safety
  net behind the declarative-axes port).
"""

import subprocess
import sys
from functools import lru_cache

import pytest

from repro.experiments.api import (
    ExperimentSpec,
    all_experiments,
    check_shapes,
    experiment_keys,
    get_experiment,
)
from repro.experiments.report import Table
from repro.harness import run_grid, write_artifact
from repro.harness.runner import _normalise
from repro.harness.spec import canonical_json, cell_seed

from tests.goldens import GOLDEN_DIR, GOLDEN_EXPERIMENTS, smoke_params

EXPERIMENTS = experiment_keys()


@lru_cache(maxsize=None)
def _smoke_run(exp_id: str):
    """One sequential smoke-grid evaluation per experiment, shared by tests."""
    return run_grid(get_experiment(exp_id), smoke_params()[exp_id])


class TestRegistry:
    def test_thirteen_experiments_registered(self):
        assert len(EXPERIMENTS) == 13
        assert "q1" in EXPERIMENTS
        assert "c1" in EXPERIMENTS

    def test_canonical_order(self):
        assert EXPERIMENTS == [
            "t1", "t2", "t3", "t4", "f1", "f2", "f3", "e1", "e2", "a1", "a2",
            "q1", "c1",
        ]

    def test_canonical_order_survives_direct_module_import(self):
        # Importing a built-in module directly registers it (and only it)
        # first; the registry must still report canonical order, not raw
        # registration order.
        code = (
            "import repro.experiments.e2_mobility\n"
            "from repro.experiments.api import all_experiments\n"
            "print(','.join(all_experiments()))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == ",".join(EXPERIMENTS)

    def test_every_spec_is_declarative(self):
        for spec in all_experiments().values():
            assert isinstance(spec, ExperimentSpec)
            assert spec.axes, f"{spec.exp_id} has no declarative axes"

    def test_smoke_params_cover_the_registry(self):
        assert set(smoke_params()) == set(EXPERIMENTS)

    def test_harness_registry_delegates(self):
        from repro.harness import all_specs, get_spec

        assert list(all_specs()) == EXPERIMENTS
        assert get_spec("Q1") is get_experiment("q1")

    def test_every_in_repo_experiment_module_is_auto_imported(self):
        # The registry auto-imports built-ins via _BUILTIN_MODULES; an
        # in-repo module that registers an experiment but is missing from
        # that mapping would be silently absent from every consumer (the
        # old hard-coded-tuple bug).  Fail loudly here instead.
        import pathlib

        import repro.experiments as package
        from repro.experiments.api import _BUILTIN_MODULES

        defining = {
            path.stem
            for path in pathlib.Path(package.__file__).parent.glob("*.py")
            if path.stem != "api"
            and "register_experiment(" in path.read_text(encoding="utf-8")
        }
        assert defining == set(_BUILTIN_MODULES.values())

    def test_builtin_mapping_mismatch_fails_loudly(self, monkeypatch):
        # A _BUILTIN_MODULES key whose module registers a different id must
        # raise a ConfigurationError, not a bare KeyError mid-ordering.
        from repro.errors import ConfigurationError
        from repro.experiments import api

        monkeypatch.setitem(api._BUILTIN_MODULES, "zz", "t2_impact_of_f")
        with pytest.raises(ConfigurationError, match="did not register"):
            api.all_experiments()

    def test_duplicate_axis_names_are_rejected(self):
        from repro.errors import ConfigurationError
        from repro.experiments.api import ParamAxis, Section

        with pytest.raises(ConfigurationError, match="duplicate axis names"):
            Section(axes=(ParamAxis("x", field="a"), ParamAxis("x", field="b")))

    def test_mixed_case_ids_are_rejected_at_registration(self):
        # Lookups lowercase the query, so a mixed-case registration would
        # be listed but unresolvable — refuse it up front.
        from repro.errors import ConfigurationError
        from repro.experiments.api import register_experiment

        spec = get_experiment("t2")
        with pytest.raises(ConfigurationError, match="lower-case"):
            register_experiment(
                ExperimentSpec(
                    exp_id="X9",
                    title=spec.title,
                    params_cls=spec.params_cls,
                    axes=spec.axes,
                    run_cell=spec.run_cell,
                    tabulate=spec.tabulate,
                )
            )


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
class TestGridShape:
    def test_cells_nonempty_and_unique(self, exp_id):
        spec = get_experiment(exp_id)
        for params in (spec.make_params(), smoke_params()[exp_id]):
            cells = spec.grid(params)
            assert cells, f"{exp_id}: empty grid"
            rendered = [canonical_json(coords) for coords in cells]
            assert len(set(rendered)) == len(rendered), f"{exp_id}: duplicate cells"

    def test_coords_match_declared_axes(self, exp_id):
        spec = get_experiment(exp_id)
        names = set(spec.axis_names())
        for coords in spec.grid(spec.make_params()):
            assert set(coords) <= names

    def test_cell_seeds_are_distinct(self, exp_id):
        spec = get_experiment(exp_id)
        params = spec.make_params()
        seeds = [cell_seed(exp_id, coords, params.seed) for coords in spec.grid(params)]
        assert len(set(seeds)) == len(seeds)


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
class TestCellContract:
    def test_run_cell_is_deterministic_for_a_fixed_seed(self, exp_id):
        result = _smoke_run(exp_id)
        outcome = result.outcomes[0]
        replay = _normalise(
            result.spec.run_cell(result.params, dict(outcome.coords), outcome.seed)
        )
        assert replay == outcome.value

    def test_declared_metrics_present_in_every_cell(self, exp_id):
        result = _smoke_run(exp_id)
        metric_names = [metric.name for metric in result.spec.metrics]
        assert metric_names, f"{exp_id}: no declared metrics"
        for outcome in result.outcomes:
            missing = [name for name in metric_names if name not in outcome.value]
            assert not missing, f"{exp_id}: cell {outcome.coords} lacks {missing}"

    def test_tabulate_accepts_its_own_values(self, exp_id):
        result = _smoke_run(exp_id)
        tables = result.tables()
        assert tables
        for table in tables:
            assert isinstance(table, Table)
            assert table.rows
            for row in table.rows:
                assert len(row) == len(table.headers)


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
class TestDeclaredShapes:
    def test_declared_shapes_hold_on_smoke_run(self, exp_id):
        # Expected-shape declarations (Monotone/Banded) are asserted
        # generically: whatever an experiment declares must hold on its
        # smoke grid.  Experiments without shapes pass vacuously.
        result = _smoke_run(exp_id)
        values = [outcome.value for outcome in result.outcomes]
        violations = check_shapes(result.spec, result.params, values)
        assert not violations, f"{exp_id}: " + "; ".join(violations)


def test_shape_declarations_exist_somewhere():
    # The generic assertion above must not be vacuous across the board.
    declared = {
        exp_id for exp_id, spec in all_experiments().items() if spec.shapes
    }
    assert {"t1", "t3", "a1", "q1"} <= declared


@pytest.mark.parametrize("exp_id", GOLDEN_EXPERIMENTS)
class TestGoldenArtifacts:
    def test_artifact_is_byte_identical_to_golden(self, exp_id, tmp_path):
        path = write_artifact(tmp_path, _smoke_run(exp_id))
        golden = GOLDEN_DIR / path.name
        assert golden.exists(), (
            f"missing golden {golden.name}; run `python -m tests.goldens.regenerate`"
        )
        assert path.read_bytes() == golden.read_bytes(), (
            f"{exp_id}: artifact drifted from the committed golden — an axis, "
            "seed or table change is observable; regenerate only if intended"
        )


class TestQ1:
    """The QoS comparison: the registry's first post-port client."""

    def test_default_axis_is_every_registered_detector(self):
        from repro.detectors import detector_keys
        from repro.experiments.q1_qos_comparison import Q1Params

        assert Q1Params().detectors == tuple(detector_keys())

    def test_one_row_per_detector_with_both_qos_axes(self):
        result = _smoke_run("q1")
        table = result.tables()[0]
        labels = table.column("detector")
        assert len(labels) == len(result.params.detectors)
        for latency in table.column("detect mean (s)"):
            # every family detected the crash within the horizon
            assert latency == latency and 0.0 < latency < 15.0
        for accuracy in table.column("query accuracy P_A"):
            assert 0.0 <= accuracy <= 1.0


class TestC1:
    """The consensus workload plane's flagship experiment."""

    def test_default_axes_cover_every_detector_and_every_fault_preset(self):
        from repro.detectors import detector_keys
        from repro.experiments.c1_consensus_qos import C1Params
        from repro.experiments.scenarios import fault_scenario_keys

        params = C1Params()
        assert params.detectors == tuple(detector_keys())
        assert set(params.faults) == set(fault_scenario_keys())

    def test_coordcrash_separates_three_detector_families_on_latency(self):
        # The acceptance shape: with the round-1 coordinator dead at start,
        # the in-flight instance pays each family's detection latency —
        # query ≈ Δ + δ, heartbeat ≈ Θ, phi-accrual later still.
        result = _smoke_run("c1")
        table = result.tables()[0]
        by_detector = {
            label: latency
            for fault, label, latency in zip(
                table.column("fault"),
                table.column("detector"),
                table.column("latency max (s)"),
            )
            if fault == "coordcrash"
        }
        groups = {round(latency, 1) for latency in by_detector.values()}
        assert len(groups) >= 3, by_detector

    def test_partition_separates_aborted_rounds_by_oracle_style(self):
        # Timer families falsely accuse the far side and churn through
        # nacked rounds; the query families (with retry) just stall.
        result = _smoke_run("c1")
        aborted = {
            label: count
            for fault, label, count in zip(
                result.tables()[0].column("fault"),
                result.tables()[0].column("detector"),
                result.tables()[0].column("aborted rounds"),
            )
            if fault == "partition"
        }
        assert min(aborted.values()) == 0
        assert max(aborted.values()) >= 3, aborted

    def test_safety_holds_in_every_cell(self):
        result = _smoke_run("c1")
        for outcome in result.outcomes:
            assert outcome.value["agreement"] is True, outcome.coords
            assert outcome.value["validity"] is True, outcome.coords
