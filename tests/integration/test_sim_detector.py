"""End-to-end ◇S behavior of the time-free detector on the simulator.

These tests exercise the actual theorem statements: strong completeness
(Lemma 2), eventual weak accuracy under MP (Lemma 3), and the supporting
propagation machinery (Lemma 1) — on full runs with real (simulated)
latencies, pacing and fault injection.
"""


from repro.core.properties import find_mp_witness
from repro.metrics import accuracy_stabilization, detection_stats, mistake_stats
from repro.sim import (
    BiasedLatency,
    ExponentialLatency,
    LogNormalLatency,
    QueryPacing,
    SimCluster,
    time_free_driver_factory,
)
from repro.sim.faults import CrashFault, FaultPlan


def build(n, f, *, fault_plan=None, latency=None, seed=1, grace=0.05, idle=0.0,
          stagger=0.05):
    return SimCluster(
        n=n,
        driver_factory=time_free_driver_factory(f, QueryPacing(grace=grace, idle=idle)),
        latency=latency if latency is not None else ExponentialLatency(0.001),
        seed=seed,
        fault_plan=fault_plan,
        start_stagger=stagger,
    )


class TestStrongCompleteness:
    def test_single_crash_is_permanently_suspected_by_all(self):
        plan = FaultPlan.of(crashes=[CrashFault(4, 2.0)])
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=10.0)
        for pid in cluster.correct_processes():
            assert 4 in cluster.suspects_of(pid)
            assert cluster.trace.permanent_suspicion_time(pid, 4) is not None

    def test_f_simultaneous_crashes(self):
        plan = FaultPlan.of(crashes=[CrashFault(5, 2.0), CrashFault(6, 2.0)])
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=10.0)
        for pid in cluster.correct_processes():
            assert cluster.suspects_of(pid) >= frozenset({5, 6})

    def test_crash_at_time_zero(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 0.0)])
        cluster = build(5, 1, fault_plan=plan)
        cluster.run(until=10.0)
        for pid in cluster.correct_processes():
            assert 3 in cluster.suspects_of(pid)

    def test_staggered_crashes(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(7, 1.0), CrashFault(8, 3.0), CrashFault(9, 5.0)]
        )
        cluster = build(9, 3, fault_plan=plan)
        cluster.run(until=15.0)
        for pid in cluster.correct_processes():
            assert cluster.suspects_of(pid) == frozenset({7, 8, 9})

    def test_detection_latency_tracks_grace(self):
        # Detection time ≈ pacing grace + δ, not some multiple of it.
        plan = FaultPlan.of(crashes=[CrashFault(4, 5.0)])
        cluster = build(6, 2, fault_plan=plan, grace=0.2)
        cluster.run(until=15.0)
        stats = detection_stats(cluster.trace, 4, 5.0, cluster.correct_processes())
        assert stats.detected_by_all
        assert stats.max_latency < 1.0

    def test_rounds_keep_terminating_after_f_crashes(self):
        plan = FaultPlan.of(crashes=[CrashFault(5, 1.0), CrashFault(6, 1.0)])
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=10.0)
        late_rounds = [r for r in cluster.trace.rounds if r.finished_at > 2.0]
        live = cluster.correct_processes()
        assert {r.querier for r in late_rounds} == live


class TestQuorumStarvation:
    def test_more_crashes_than_f_wedges_rounds_not_the_simulator(self):
        # Model violation: 3 crashes with f = 2.  Survivors' queries can
        # never gather n - f = 4 responses from the 3 live processes; the
        # protocol blocks (by design) and the run simply drains.
        plan = FaultPlan.of(
            crashes=[CrashFault(4, 1.0), CrashFault(5, 1.0), CrashFault(6, 1.0)]
        )
        cluster = build(6, 2, fault_plan=plan)
        cluster.run(until=10.0)
        late_rounds = [r for r in cluster.trace.rounds if r.finished_at > 2.0]
        assert late_rounds == []


class TestEventualWeakAccuracy:
    # The accuracy guarantee is *conditional on RP actually holding*: some
    # process's communication must genuinely be faster than its neighbors'.
    # A bounded-but-highly-variable base delay with an 8x faster favored
    # process realises RP deterministically (under unbounded i.i.d. heavy
    # tails RP fails with positive probability each round — see F2b, which
    # measures exactly that).
    def _rp_latency(self):
        from repro.sim.latency import UniformLatency

        return BiasedLatency(
            UniformLatency(0.001, 0.02),
            favored=frozenset({1}),
            speedup=8.0,
            bidirectional=True,
        )

    def test_responsive_process_is_never_suspected(self):
        cluster = build(8, 3, latency=self._rp_latency(), grace=0.01, idle=0.05)
        cluster.run(until=30.0)
        for pid in cluster.correct_processes():
            intervals = cluster.trace.suspicion_intervals(pid, 1, horizon=30.0)
            assert intervals == [], f"observer {pid} wrongly suspected the RP process"

    def test_mp_oracle_certifies_the_biased_run(self):
        cluster = build(8, 3, latency=self._rp_latency(), grace=0.01, idle=0.05)
        cluster.run(until=30.0)
        witness = find_mp_witness(
            cluster.trace.rounds, f=3, correct=cluster.correct_processes(), min_suffix=5
        )
        assert witness is not None
        assert witness.responder == 1

    def test_false_suspicions_self_correct(self):
        # Without bias and with a tight grace, transient false suspicions
        # happen — and every one must be corrected by the mistake machinery
        # (no pair may remain wrongly suspected once delays quiet down).
        cluster = build(8, 3, latency=LogNormalLatency(0.005, 1.5), grace=0.01, idle=0.05)
        cluster.run(until=30.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=30.0)
        if stats.count:
            stabilization = accuracy_stabilization(
                cluster.trace, cluster.correct_processes(), horizon=30.0
            )
            # Some process stabilized (EWA) even in the unbiased run.
            assert any(v is not None for v in stabilization.values())

    def test_crash_of_the_favored_process_does_not_break_completeness(self):
        latency = BiasedLatency(
            ExponentialLatency(0.001),
            favored=frozenset({1}),
            speedup=8.0,
            bidirectional=True,
        )
        plan = FaultPlan.of(crashes=[CrashFault(1, 3.0)])
        cluster = build(6, 2, fault_plan=plan, latency=latency)
        cluster.run(until=15.0)
        for pid in cluster.correct_processes():
            assert 1 in cluster.suspects_of(pid)


class TestPropagationMachinery:
    def test_mistake_information_spreads_to_everyone(self):
        # Force one false suspicion by pausing a process's responses via a
        # one-shot mobility-style detach, then verify every node clears it.
        from repro.sim.faults import MobilityFault

        plan = FaultPlan.of(moves=[MobilityFault(3, depart=2.0, arrive=4.0)])
        cluster = build(6, 2, fault_plan=plan, grace=0.2)
        cluster.run(until=3.9)
        suspected_somewhere = any(
            3 in cluster.suspects_of(pid) for pid in cluster.membership if pid != 3
        )
        assert suspected_somewhere
        cluster.run(until=15.0)
        for pid in cluster.membership:
            if pid == 3:
                continue
            assert 3 not in cluster.suspects_of(pid)

    def test_counters_increase_monotonically_per_process(self):
        cluster = build(5, 2)
        cluster.run(until=5.0)
        for driver in cluster.drivers.values():
            detector = driver.detector
            assert detector.counter >= detector.rounds_completed

    def test_suspicion_state_invariants_hold_at_end(self):
        plan = FaultPlan.of(crashes=[CrashFault(5, 2.0)])
        cluster = build(6, 2, fault_plan=plan, latency=LogNormalLatency(0.003, 1.0))
        cluster.run(until=10.0)
        for pid, driver in cluster.drivers.items():
            assert driver.detector.state.invariant_violations() == []
