"""End-to-end runs of the timer-based baselines on the simulator."""

from repro.metrics import detection_stats, mistake_stats
from repro.sim import ExponentialLatency, SimCluster
from repro.sim.cluster import heartbeat_driver_factory, timed_driver_factory
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.latency import RegimeShiftLatency
from repro.sim.topology import ring


def build_heartbeat(n, *, period=0.5, timeout=1.0, fault_plan=None, latency=None,
                    topology=None, seed=1):
    kwargs = {"topology": topology} if topology is not None else {"n": n}
    return SimCluster(
        driver_factory=heartbeat_driver_factory(period=period, timeout=timeout),
        latency=latency if latency is not None else ExponentialLatency(0.001),
        seed=seed,
        fault_plan=fault_plan,
        start_stagger=period,
        **kwargs,
    )


class TestHeartbeatEndToEnd:
    def test_crash_detected_within_timeout_band(self):
        plan = FaultPlan.of(crashes=[CrashFault(4, 5.0)])
        cluster = build_heartbeat(5, fault_plan=plan)
        cluster.run(until=15.0)
        stats = detection_stats(cluster.trace, 4, 5.0, cluster.correct_processes())
        assert stats.detected_by_all
        # Θ = 1.0, Δ = 0.5: detection inside [Θ - Δ, Θ] (+ small network δ).
        assert all(0.4 <= lat <= 1.1 for lat in stats.latencies.values())

    def test_no_false_suspicions_with_calm_network(self):
        cluster = build_heartbeat(5)
        cluster.run(until=15.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=15.0)
        assert stats.count == 0

    def test_regime_shift_causes_false_suspicions(self):
        # The core negative result for timeouts: delays inflated past Θ.
        latency = RegimeShiftLatency(
            ExponentialLatency(0.001), shift_at=5.0, factor=2000.0
        )
        cluster = build_heartbeat(5, latency=latency)
        cluster.run(until=25.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=25.0)
        assert stats.count > 0


class TestGossipEndToEnd:
    def gossip_factory(self, period=0.5, timeout=1.5):
        from repro.baselines.gossip import GossipHeartbeatDetector

        def make(pid, members):
            return GossipHeartbeatDetector(pid, members, period=period, timeout=timeout)

        return timed_driver_factory(make)

    def test_detects_crash_across_multiple_hops(self):
        # On a ring, node 1 only hears about node 4 via relayed vectors.
        topology = ring(range(1, 8))
        plan = FaultPlan.of(crashes=[CrashFault(4, 5.0)])
        cluster = SimCluster(
            topology=topology,
            driver_factory=self.gossip_factory(),
            latency=ExponentialLatency(0.001),
            seed=1,
            fault_plan=plan,
            start_stagger=0.5,
        )
        cluster.run(until=20.0)
        for pid in cluster.correct_processes():
            assert 4 in cluster.suspects_of(pid)

    def test_relaying_keeps_distant_nodes_unsuspected(self):
        topology = ring(range(1, 8))
        cluster = SimCluster(
            topology=topology,
            driver_factory=self.gossip_factory(),
            latency=ExponentialLatency(0.001),
            seed=1,
            start_stagger=0.5,
        )
        cluster.run(until=20.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=20.0)
        # Fresh heartbeats flood around the ring well inside Θ = 1.5 s.
        assert stats.unresolved == 0


class TestPhiEndToEnd:
    def phi_factory(self, threshold=8.0):
        from repro.baselines.phi_accrual import PhiAccrualDetector

        def make(pid, members):
            return PhiAccrualDetector(pid, members, period=0.5, threshold=threshold)

        return timed_driver_factory(make)

    def test_detects_crash(self):
        plan = FaultPlan.of(crashes=[CrashFault(4, 10.0)])
        cluster = SimCluster(
            n=5,
            driver_factory=self.phi_factory(),
            latency=ExponentialLatency(0.001),
            seed=1,
            fault_plan=plan,
            start_stagger=0.5,
        )
        cluster.run(until=30.0)
        stats = detection_stats(cluster.trace, 4, 10.0, cluster.correct_processes())
        assert stats.detected_by_all

    def test_adapts_to_slow_but_steady_cadence(self):
        # A uniformly slower network after warm-up: phi re-learns and does
        # not flap forever (unlike a fixed timeout tuned to the old regime).
        latency = RegimeShiftLatency(
            ExponentialLatency(0.001), shift_at=15.0, factor=100.0
        )
        cluster = SimCluster(
            n=5,
            driver_factory=self.phi_factory(),
            latency=latency,
            seed=1,
            start_stagger=0.5,
        )
        cluster.run(until=60.0)
        stats = mistake_stats(cluster.trace, cluster.correct_processes(), horizon=60.0)
        assert stats.unresolved == 0
