"""Integration tests for the q1 stress presets (the chaos fault plane).

Pins each preset's artifact byte-for-byte against the committed chaos
goldens (``tests/goldens/chaos/<preset>/BENCH_Q1.json``) and asserts the
headline acceptance property: under ``partition`` and ``crashrec`` the
query-accuracy metric P_A separates at least three detector families.
"""

from functools import lru_cache

import pytest

from repro.harness import run_grid, write_artifact
from repro.harness.registry import get_spec

from tests.goldens import CHAOS_PRESETS, GOLDEN_DIR, chaos_params

PRESET_METHODS = {
    "partition": "partition",
    "crashrec": "crashrec",
    "churn": "churn",
    "lossburst": "lossburst",
}


@lru_cache(maxsize=None)
def _chaos_run(preset: str):
    return run_grid(get_spec("q1"), chaos_params()[preset])


def _accuracy_by_detector(result):
    by_detector: dict[str, list[float]] = {}
    for outcome in result.outcomes:
        by_detector.setdefault(outcome.coords["detector"], []).append(
            outcome.value["query_accuracy"]
        )
    return {
        detector: sum(vals) / len(vals) for detector, vals in by_detector.items()
    }


@pytest.mark.parametrize("preset", CHAOS_PRESETS)
class TestChaosGoldens:
    def test_artifact_is_byte_identical_to_golden(self, preset, tmp_path):
        path = write_artifact(tmp_path, _chaos_run(preset))
        golden = GOLDEN_DIR / "chaos" / preset / path.name
        assert golden.exists(), (
            f"missing chaos golden for {preset!r}; "
            "run `python -m tests.goldens.regenerate`"
        )
        assert path.read_bytes() == golden.read_bytes(), (
            f"q1[{preset}]: artifact drifted from the committed chaos golden — "
            "a fault-schedule, seed or scoring change is observable; "
            "regenerate only if intended"
        )

    def test_preset_constructor_matches_golden_params(self, preset):
        from repro.experiments.q1_qos_comparison import Q1Params

        built = getattr(Q1Params, PRESET_METHODS[preset])()
        assert built.faults == (preset,)
        # make_params routes preset names to these constructors.
        spec = get_spec("q1")
        assert spec.make_params(preset=preset).faults == (preset,)

    def test_every_cell_reports_epoch_metrics(self, preset):
        result = _chaos_run(preset)
        for outcome in result.outcomes:
            assert outcome.coords["fault"] == preset
            value = outcome.value
            assert 0.0 <= value["query_accuracy"] <= 1.0
            assert value["detect_mean"] is None or value["detect_mean"] >= 0.0

    def test_scripted_crash_still_detected(self, preset):
        # The q1 scripted victim crashes at crash_at under every preset;
        # the stress scenario must not mask that detection.
        result = _chaos_run(preset)
        for outcome in result.outcomes:
            assert outcome.value["detected_by"] > 0, (
                f"q1[{preset}] {outcome.coords}: scripted crash undetected"
            )


class TestFamilySeparation:
    """Acceptance: P_A separates >= 3 detector families under stress."""

    @pytest.mark.parametrize("preset", ["partition", "crashrec"])
    def test_pa_separates_three_families(self, preset):
        accuracy = _accuracy_by_detector(_chaos_run(preset))
        assert len(accuracy) >= 3
        distinct = {round(value, 3) for value in accuracy.values()}
        assert len(distinct) >= 3, (
            f"q1[{preset}]: P_A separates only {len(distinct)} families: {accuracy}"
        )

    def test_partition_is_hardest_on_timed_families(self):
        # Quorum detectors ride out the split (rounds stall, no false
        # suspicion); timed families accuse the far side.
        accuracy = _accuracy_by_detector(_chaos_run("partition"))
        assert accuracy["time-free"] == pytest.approx(1.0)
        timed = [v for k, v in accuracy.items() if k not in ("time-free", "partial")]
        assert timed and all(v < 1.0 for v in timed)
