"""End-to-end runs of the partial-connectivity detector (extension).

Exercises the flooding machinery on multi-hop topologies, the f-covering
assumption, and the full mobility scenario with and without Algorithm 2's
eviction rule.
"""

import random

from repro.metrics import detection_stats
from repro.partial import partial_driver_factory, validate_f_covering
from repro.sim import ExponentialLatency, QueryPacing, SimCluster
from repro.sim.faults import CrashFault, FaultPlan, MobilityFault
from repro.sim.topology import grid, manet_topology, ring


def build(topology, d, f, *, fault_plan=None, seed=1, grace=0.2, mobility=True):
    return SimCluster(
        topology=topology,
        driver_factory=partial_driver_factory(
            d, f, QueryPacing(grace=grace), mobility=mobility
        ),
        latency=ExponentialLatency(0.001),
        seed=seed,
        fault_plan=fault_plan,
        start_stagger=grace,
    )


class TestFloodingCompleteness:
    def test_ring_crash_detected_many_hops_away(self):
        # Ring: d = 3, f = 1, quorum 2 (self + one neighbor).  Node 5's
        # crash is only *observable* by nodes 4 and 6; everyone else must
        # learn it through suspicion flooding.
        topology = ring(range(1, 10))
        plan = FaultPlan.of(crashes=[CrashFault(5, 3.0)])
        cluster = build(topology, d=3, f=1, fault_plan=plan)
        cluster.run(until=20.0)
        for pid in cluster.correct_processes():
            assert 5 in cluster.suspects_of(pid), f"{pid} never learned of the crash"

    def test_grid_crash_detected_everywhere(self):
        topology = grid(4, 4)  # d = 3 (corners have degree 2)
        plan = FaultPlan.of(crashes=[CrashFault(6, 3.0)])
        cluster = build(topology, d=3, f=1, fault_plan=plan)
        cluster.run(until=20.0)
        for pid in cluster.correct_processes():
            assert 6 in cluster.suspects_of(pid)

    def test_manet_topology_with_multiple_crashes(self):
        rng = random.Random(3)
        topology = manet_topology(30, f=2, rng=rng, min_neighbors=5)
        validate_f_covering(topology, 2)
        d = topology.range_density()
        plan = FaultPlan.of(crashes=[CrashFault(7, 3.0), CrashFault(21, 5.0)])
        cluster = build(topology, d=d, f=2, fault_plan=plan)
        cluster.run(until=25.0)
        for crash in plan.crashes:
            stats = detection_stats(
                cluster.trace, crash.process, crash.time, cluster.correct_processes()
            )
            assert stats.detected_by_all, f"crash of {crash.process} missed"

    def test_membership_is_learned_not_configured(self):
        topology = ring(range(1, 6))
        cluster = build(topology, d=3, f=1)
        cluster.run(until=10.0)
        for pid, driver in cluster.drivers.items():
            known = driver.detector.known()
            # Exactly the 1-hop neighbors speak to us via queries.
            assert known == topology.neighbors(pid)


class TestMobilityScenario:
    def build_mobility_run(self, *, mobility, arrive=30.0):
        rng = random.Random(8)
        topology = manet_topology(25, f=1, rng=rng, min_neighbors=6)
        d = topology.range_density()
        mover = next(
            pid
            for pid in sorted(topology.ids())
            if all(
                len(topology.neighbors(nb) - {pid}) >= d - 1
                for nb in topology.neighbors(pid)
            )
        )
        # Land on the farthest node's position: a genuinely new range.
        import math

        origin = topology.positions[mover]
        landing = max(
            (pid for pid in topology.ids() if pid != mover),
            key=lambda pid: math.hypot(
                topology.positions[pid][0] - origin[0],
                topology.positions[pid][1] - origin[1],
            ),
        )
        plan = FaultPlan.of(
            moves=[
                MobilityFault(
                    mover,
                    depart=10.0,
                    arrive=arrive,
                    new_position=topology.positions[landing],
                )
            ]
        )
        cluster = build(
            topology, d=d, f=1, fault_plan=plan, mobility=mobility, grace=0.5
        )
        return cluster, mover

    def test_moving_node_is_suspected_while_away(self):
        cluster, mover = self.build_mobility_run(mobility=True)
        cluster.run(until=25.0)
        suspecting = sum(
            1 for pid in cluster.membership if pid != mover and mover in cluster.suspects_of(pid)
        )
        assert suspecting == len(cluster.membership) - 1

    def test_reconnection_clears_all_false_suspicions(self):
        cluster, mover = self.build_mobility_run(mobility=True)
        cluster.run(until=70.0)
        crashed = frozenset()
        assert cluster.trace.false_suspicion_count_at(70.0, crashed) == 0

    def test_without_eviction_the_ping_pong_persists(self):
        cluster, mover = self.build_mobility_run(mobility=False)
        cluster.run(until=70.0)
        crashed = frozenset()
        # Algorithm 1 alone cannot settle: the mover keeps re-suspecting its
        # old neighborhood (or vice versa).
        assert cluster.trace.false_suspicion_count_at(70.0, crashed) > 0

    def test_mover_keeps_state_while_detached(self):
        cluster, mover = self.build_mobility_run(mobility=True)
        cluster.run(until=25.0)
        counter_away = cluster.drivers[mover].detector.counter
        assert counter_away > 0  # accumulated before departure, kept during
