"""Registry-parametrized conformance battery.

Every family registered in :mod:`repro.detectors` — whatever its protocol
style — must pass the same black-box battery on the simulator:

* **lifecycle**: a crash-free run raises no (lasting) suspicions under a
  calm network;
* **strong completeness**: after a crash, every correct process eventually
  suspects the victim;
* **output discipline**: suspect sets are frozensets over the membership,
  never containing the local process.

The battery runs each family twice: on its native driver
(QueryResponseDriver / TimedDriver) and hosted on TimedDriver through the
unified facade (``sim_driver_factory(..., unified=True)``), which is what
keeps the facade honest — same convergence behaviour through one code
path for all six families.

New families registered by plugins are picked up automatically (the
parametrization reads the registry).
"""

import pytest

from repro.detectors import all_detectors, sim_driver_factory
from repro.sim.cluster import SimCluster
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.latency import ConstantLatency

N = 6
F = 1
VICTIM = N
CRASH_AT = 6.0
HORIZON = 25.0


def family_params(key: str) -> dict:
    """Per-family required knobs for a full-mesh n=6 deployment."""
    # Full mesh: range density d = n recovers the DSN 2003 core exactly.
    return {"d": N} if key == "partial" else {}


def build_cluster(key: str, *, unified: bool, fault_plan=None) -> SimCluster:
    return SimCluster(
        n=N,
        driver_factory=sim_driver_factory(
            key, F, unified=unified, **family_params(key)
        ),
        latency=ConstantLatency(0.001),
        seed=11,
        fault_plan=fault_plan,
        start_stagger=1.0,
    )


def detector_keys():
    return sorted(all_detectors())


@pytest.fixture(params=detector_keys())
def key(request):
    return request.param


@pytest.fixture(params=[False, True], ids=["native", "unified"])
def unified(request):
    return request.param


class TestConformance:
    def test_calm_run_raises_no_lasting_suspicions(self, key, unified):
        cluster = build_cluster(key, unified=unified)
        cluster.run(until=HORIZON)
        for pid in cluster.membership:
            assert cluster.suspects_of(pid) == frozenset(), (key, unified, pid)

    def test_crash_is_eventually_suspected_by_every_correct_process(self, key, unified):
        plan = FaultPlan.of(crashes=[CrashFault(VICTIM, CRASH_AT)])
        cluster = build_cluster(key, unified=unified, fault_plan=plan)
        cluster.run(until=HORIZON)
        for pid in cluster.correct_processes():
            assert VICTIM in cluster.suspects_of(pid), (key, unified, pid)

    def test_suspect_sets_are_wellformed(self, key, unified):
        plan = FaultPlan.of(crashes=[CrashFault(VICTIM, CRASH_AT)])
        cluster = build_cluster(key, unified=unified, fault_plan=plan)
        cluster.run(until=HORIZON)
        for pid in cluster.correct_processes():
            suspects = cluster.suspects_of(pid)
            assert isinstance(suspects, frozenset)
            assert pid not in suspects
            assert suspects <= cluster.membership


class TestConvergenceTime:
    """Detection-latency sanity: each family's well-known bound holds."""

    def first_detection(self, key, unified) -> float:
        plan = FaultPlan.of(crashes=[CrashFault(VICTIM, CRASH_AT)])
        cluster = build_cluster(key, unified=unified, fault_plan=plan)
        cluster.run(until=HORIZON)
        times = [
            change.time
            for change in cluster.trace.suspicion_changes
            if VICTIM in change.added
        ]
        assert times, (key, unified)
        return min(times) - CRASH_AT

    def test_timer_families_sit_in_the_timeout_band(self, unified):
        for key in ("heartbeat", "heartbeat-adaptive", "gossip"):
            latency = self.first_detection(key, unified)
            # [Θ - Δ, Θ] = [1, 2] s, plus stagger slack.
            assert 0.9 <= latency <= 3.1, (key, latency)

    def test_query_families_track_the_grace(self, unified):
        for key in ("time-free", "partial"):
            latency = self.first_detection(key, unified)
            assert latency <= 2.5, (key, latency)
