"""The extension collapses to the core on a full mesh with d = n.

``repro.partial`` claims: "The DSN 2003 core is recovered exactly by
running this detector on a full mesh with d = n."  These tests check the
observable equivalence: same quorum, same suspicions, same detection
behavior — with the one structural difference that the partial detector
must first *learn* the membership from queries.
"""

from repro.metrics import detection_stats
from repro.partial import partial_driver_factory
from repro.sim import ExponentialLatency, QueryPacing, SimCluster
from repro.sim.cluster import time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan

N = 6
F = 2
PACING = QueryPacing(grace=0.1, idle=0.0)


def run_core(plan, seed=13, horizon=15.0):
    cluster = SimCluster(
        n=N,
        driver_factory=time_free_driver_factory(F, PACING),
        latency=ExponentialLatency(0.001),
        seed=seed,
        fault_plan=plan,
        start_stagger=0.1,
    )
    cluster.run(until=horizon)
    return cluster

def run_partial(plan, seed=13, horizon=15.0):
    cluster = SimCluster(
        n=N,  # full mesh
        driver_factory=partial_driver_factory(N, F, PACING),
        latency=ExponentialLatency(0.001),
        seed=seed,
        fault_plan=plan,
        start_stagger=0.1,
    )
    cluster.run(until=horizon)
    return cluster


class TestEquivalenceOnFullMesh:
    def test_same_quorum(self):
        core = run_core(FaultPlan.none(), horizon=1.0)
        partial = run_partial(FaultPlan.none(), horizon=1.0)
        core_detector = core.drivers[1].detector
        partial_detector = partial.drivers[1].detector
        assert core_detector.config.quorum == partial_detector.config.quorum == N - F

    def test_partial_learns_the_full_membership(self):
        partial = run_partial(FaultPlan.none(), horizon=5.0)
        for pid, driver in partial.drivers.items():
            assert driver.detector.known() == partial.membership - {pid}

    def test_identical_final_suspect_sets_after_crashes(self):
        plan = FaultPlan.of(crashes=[CrashFault(5, 3.0), CrashFault(6, 5.0)])
        core = run_core(plan)
        partial = run_partial(plan)
        for pid in core.correct_processes():
            assert core.suspects_of(pid) == partial.suspects_of(pid) == frozenset({5, 6})

    def test_comparable_detection_latency(self):
        plan = FaultPlan.of(crashes=[CrashFault(6, 5.0)])
        core = run_core(plan)
        partial = run_partial(plan)
        core_stats = detection_stats(core.trace, 6, 5.0, core.correct_processes())
        partial_stats = detection_stats(partial.trace, 6, 5.0, partial.correct_processes())
        assert core_stats.detected_by_all and partial_stats.detected_by_all
        # Same pacing, same network, same quorum: latencies within a round.
        assert abs(core_stats.mean_latency - partial_stats.mean_latency) < 0.2

    def test_no_false_suspicions_either_way(self):
        core = run_core(FaultPlan.none())
        partial = run_partial(FaultPlan.none())
        for cluster in (core, partial):
            for pid in cluster.membership:
                assert cluster.suspects_of(pid) == frozenset()
