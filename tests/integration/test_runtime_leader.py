"""Leader election over the asyncio runtime."""

import asyncio

from repro.core.protocol import DetectorConfig
from repro.runtime import LeaderElectorService, MemoryHub, ServicePacing
from repro.sim.latency import ConstantLatency


def build_services(n, f, *, seed=1):
    hub = MemoryHub(latency=ConstantLatency(0.001), seed=seed)
    membership = frozenset(range(1, n + 1))
    services = {}
    for pid in sorted(membership):
        config = DetectorConfig(process_id=pid, membership=membership, f=f)
        services[pid] = LeaderElectorService(
            config, hub.create_transport(pid), pacing=ServicePacing(grace=0.01)
        )
    return hub, services


def run(coro):
    return asyncio.run(coro)


class TestLeaderElectionRuntime:
    def test_initial_common_leader(self):
        async def scenario():
            hub, services = build_services(4, 1)
            await asyncio.gather(*(s.start() for s in services.values()))
            await asyncio.sleep(0.3)
            leaders = {pid: s.leader() for pid, s in services.items()}
            await asyncio.gather(*(s.stop() for s in services.values()))
            return leaders

        leaders = run(scenario())
        assert len(set(leaders.values())) == 1
        assert next(iter(leaders.values())) == 1  # min id, zero accusations

    def test_crashed_leader_is_replaced_everywhere(self):
        async def scenario():
            hub, services = build_services(4, 1, seed=2)
            await asyncio.gather(*(s.start() for s in services.values()))
            await asyncio.sleep(0.2)
            # Fail-stop the initial leader.
            hub.crash(1)
            await services[1].stop()
            survivors = [services[pid] for pid in (2, 3, 4)]
            await asyncio.gather(
                *(
                    s.wait_for_leader(lambda leader: leader != 1, timeout=20.0)
                    for s in survivors
                )
            )
            leaders = {s.process_id: s.leader() for s in survivors}
            await asyncio.gather(*(s.stop() for s in survivors))
            return leaders

        leaders = run(scenario())
        assert all(leader != 1 for leader in leaders.values())
        assert len(set(leaders.values())) == 1

    def test_watch_leader_stream(self):
        async def scenario():
            hub, services = build_services(3, 1, seed=3)
            await asyncio.gather(*(s.start() for s in services.values()))
            queue = services[2].watch_leader()
            hub.crash(1)
            await services[1].stop()
            async with asyncio.timeout(20.0):
                while True:
                    leader = await queue.get()
                    if leader != 1:
                        break
            await services[2].stop()
            await services[3].stop()
            return leader

        assert run(scenario()) in (2, 3)

    def test_accusations_gossip_between_services(self):
        async def scenario():
            hub, services = build_services(3, 1, seed=4)
            await asyncio.gather(*(s.start() for s in services.values()))
            hub.crash(3)
            await services[3].stop()
            await services[1].wait_until_suspected(3, timeout=20.0)
            await asyncio.sleep(0.2)  # a few more rounds of gossip
            acc_1 = services[1].elector.accusations()[3]
            acc_2 = services[2].elector.accusations()[3]
            await services[1].stop()
            await services[2].stop()
            return acc_1, acc_2

        acc_1, acc_2 = run(scenario())
        assert acc_1 > 0 and acc_2 > 0
