"""Test helpers: drive sans-I/O detectors over an instant, loss-free network.

``InstantExchange`` wires a set of :class:`TimeFreeDetector` instances
together without any scheduler: queries are delivered synchronously to a
chosen subset of peers (in a chosen order), which makes it easy to script
exact message patterns — who responds, who wins, who appears crashed —
and assert on the resulting suspicion state, line by line against the
paper's algorithm.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core import DetectorConfig, QueryRoundOutcome, TimeFreeDetector
from repro.ids import ProcessId


def make_detectors(
    n: int, f: int, *, extra_hooks: dict | None = None
) -> dict[ProcessId, TimeFreeDetector]:
    """Build detectors for membership ``1..n`` with crash bound ``f``."""
    membership = frozenset(range(1, n + 1))
    detectors = {}
    for pid in sorted(membership):
        config = DetectorConfig(process_id=pid, membership=membership, f=f)
        detectors[pid] = TimeFreeDetector(config)
    return detectors


class InstantExchange:
    """Synchronously run scripted query rounds among sans-I/O detectors."""

    def __init__(self, detectors: dict[ProcessId, TimeFreeDetector]):
        self.detectors = detectors

    def run_round(
        self,
        querier: ProcessId,
        *,
        responders: Sequence[ProcessId] | None = None,
        receivers: Iterable[ProcessId] | None = None,
        finish: bool = True,
    ) -> QueryRoundOutcome | None:
        """Run one query round issued by ``querier``.

        ``receivers`` — processes that *hear* the query (default: everyone
        else alive in the exchange); they merge its contents and produce a
        response.  ``responders`` — the subset (in arrival order) whose
        responses actually reach the querier in time; default: all
        receivers, in sorted order.  With ``finish=False`` the round is
        left collecting (quorum may not have been reached).
        """
        detector = self.detectors[querier]
        broadcast = detector.start_round()
        query = broadcast.message
        if receivers is None:
            receivers = [pid for pid in sorted(self.detectors, key=repr) if pid != querier]
        receivers = list(receivers)
        responses = {}
        for pid in receivers:
            effect = self.detectors[pid].on_query(query)
            if effect is not None:
                responses[pid] = effect.message
        if responders is None:
            responders = receivers
        for pid in responders:
            if pid in responses:
                detector.on_response(responses[pid])
        if not finish:
            return None
        return detector.finish_round()
