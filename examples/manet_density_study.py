"""Unknown membership on a partially-connected MANET (the extension).

Builds an f-covering radio topology with the paper's gradual construction,
runs the partial-connectivity time-free detector on it (nobody knows the
membership; each node learns its neighbors from the queries it hears),
injects crashes, and shows suspicion records flooding hop by hop.  A
second act sends one node on a journey across the field and watches the
false suspicions rise and collapse (Algorithm 2's mobility handling).

Run with::

    python examples/manet_density_study.py
"""

import math
import random

from repro.metrics import detection_stats, false_suspicion_series
from repro.partial import partial_driver_factory, validate_f_covering
from repro.sim import ExponentialLatency, QueryPacing, SimCluster
from repro.sim.faults import CrashFault, FaultPlan, MobilityFault
from repro.sim.topology import manet_topology


def act_one_crash_detection() -> None:
    print("=" * 64)
    print("act 1: crash detection with unknown membership, f = 2")
    print("=" * 64)
    rng = random.Random(11)
    topology = manet_topology(
        40, f=2, rng=rng, area=700.0, transmission_range=100.0, min_neighbors=5
    )
    validate_f_covering(topology, 2)
    d = topology.range_density()
    diameter_hint = len(topology) / d
    print(f"  nodes: {len(topology)}, range density d = {d}, quorum d - f = {d - 2}")

    plan = FaultPlan.of(crashes=[CrashFault(13, 5.0), CrashFault(27, 8.0)])
    cluster = SimCluster(
        topology=topology,
        driver_factory=partial_driver_factory(d, 2, QueryPacing(grace=1.0)),
        latency=ExponentialLatency(0.001),
        seed=11,
        fault_plan=plan,
        start_stagger=1.0,
    )
    cluster.run(until=30.0)
    for crash in plan.crashes:
        stats = detection_stats(
            cluster.trace, crash.process, crash.time, cluster.correct_processes()
        )
        print(
            f"  crash of node {crash.process} at t={crash.time:.0f}s: detected by all "
            f"{len(stats.latencies)} correct nodes, mean {stats.mean_latency:.3f}s, "
            f"max {stats.max_latency:.3f}s (multi-hop flooding)"
        )
    sample = sorted(cluster.membership)[0]
    known = cluster.drivers[sample].detector.known()
    print(
        f"  node {sample} never saw a membership list; it learned "
        f"{len(known)} neighbors from queries alone"
    )


def act_two_mobility() -> None:
    print()
    print("=" * 64)
    print("act 2: one node journeys across the field (no crashes)")
    print("=" * 64)
    rng = random.Random(8)
    topology = manet_topology(30, f=1, rng=rng, min_neighbors=6)
    d = topology.range_density()
    mover = next(
        pid
        for pid in sorted(topology.ids())
        if all(
            len(topology.neighbors(nb) - {pid}) >= d - 1
            for nb in topology.neighbors(pid)
        )
    )
    origin = topology.positions[mover]
    landing = max(
        (pid for pid in topology.ids() if pid != mover),
        key=lambda pid: math.hypot(
            topology.positions[pid][0] - origin[0],
            topology.positions[pid][1] - origin[1],
        ),
    )
    print(f"  node {mover} departs at t=20s and reconnects near node {landing} at t=60s")
    plan = FaultPlan.of(
        moves=[
            MobilityFault(
                mover, depart=20.0, arrive=60.0, new_position=topology.positions[landing]
            )
        ]
    )
    cluster = SimCluster(
        topology=topology,
        driver_factory=partial_driver_factory(d, 1, QueryPacing(grace=1.0)),
        latency=ExponentialLatency(0.001),
        seed=8,
        fault_plan=plan,
        start_stagger=1.0,
    )
    cluster.run(until=100.0)
    series = false_suspicion_series(
        cluster.trace, [float(t) for t in range(15, 101, 5)], plan
    )
    print("  false suspicions over time (all of them target live nodes):")
    for t, count in series:
        bar = "#" * count
        print(f"    t={t:5.0f}s  {count:3d} {bar}")
    final = series[-1][1]
    assert final == 0, "Algorithm 2 must clear every false suspicion"
    print("  all false suspicions corrected after reconnection ✓")


if __name__ == "__main__":
    act_one_crash_detection()
    act_two_mobility()
