"""Quickstart: run the time-free failure detector as an asyncio service.

Five detector modules over an in-process transport, one induced crash,
and the suspect lists converging — no timeout was configured anywhere:
detection is driven purely by the query-response message pattern.

Run with::

    python examples/quickstart.py
"""

import asyncio

from repro import LocalCluster
from repro.sim.latency import ConstantLatency


async def main() -> None:
    # n = 5 processes, tolerating up to f = 2 crashes: each query round
    # terminates after n - f = 3 responses.
    cluster = LocalCluster(n=5, f=2, latency=ConstantLatency(0.002), seed=42)
    await cluster.start()
    print("cluster of 5 started; letting query-response rounds run...")
    await asyncio.sleep(0.3)

    for pid in sorted(cluster.membership):
        assert not cluster.suspects_of(pid), "a healthy cluster suspects nobody"
    print("no suspicions while everyone answers queries ✓")

    print("\ncrashing process 3 ...")
    cluster.crash(3)
    await cluster.until_all_suspect(3, timeout=30.0)
    for pid in sorted(cluster.membership - {3}):
        print(f"  process {pid} suspects: {sorted(cluster.suspects_of(pid))}")
    print("strong completeness reached: every live process suspects 3 ✓")

    # The detector output is a live stream too:
    queue = cluster.services[1].watch()
    print("\nwatch() delivers future suspect-list changes as they happen")
    cluster.crash(5)
    async with asyncio.timeout(30.0):
        while True:
            suspects = await queue.get()
            print(f"  process 1 now suspects: {sorted(suspects)}")
            if 5 in suspects:
                break

    await cluster.stop()
    print("\ndone.")


if __name__ == "__main__":
    asyncio.run(main())
