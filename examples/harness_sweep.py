"""Drive the parallel experiment harness programmatically.

The CLI (``python -m repro run t1 --workers 4 --out results/``) covers the
standard grids; this example shows the library API for custom campaigns:
override an experiment's parameters, evaluate its grid on a process pool
with a shared result cache, and write the machine-readable artifact.  The
second evaluation is served entirely from cache — same bytes, no
simulation.

Run with::

    python examples/harness_sweep.py
"""

import tempfile
import time
from pathlib import Path

from repro.experiments import t2_impact_of_f
from repro.harness import ResultCache, run_grid, write_artifact


def main() -> None:
    # A custom sweep: denser f grid than the default quick preset.
    params = t2_impact_of_f.T2Params(n=20, f_values=(1, 3, 6, 9), horizon=30.0)
    spec = t2_impact_of_f.SPEC
    print(f"grid {spec.exp_id}: {len(spec.cells(params))} cells")

    with tempfile.TemporaryDirectory() as scratch:
        out = Path(scratch)
        cache = ResultCache(out / ".cache")

        started = time.perf_counter()
        cold = run_grid(spec, params, workers=2, cache=cache)
        cold_elapsed = time.perf_counter() - started
        print(f"cold run: {cold.cache_hits} cached, {cold_elapsed:.1f}s")
        print()
        print(cold.tables()[0].render())
        artifact = write_artifact(out, cold)
        first_bytes = artifact.read_bytes()
        print(f"\nartifact: {artifact.name} ({len(first_bytes)} bytes)")

        started = time.perf_counter()
        warm = run_grid(spec, params, workers=2, cache=cache)
        warm_elapsed = time.perf_counter() - started
        print(f"warm run: {warm.cache_hits}/{len(warm.outcomes)} cached, "
              f"{warm_elapsed:.2f}s (was {cold_elapsed:.1f}s)")
        assert write_artifact(out, warm).read_bytes() == first_bytes
        print("warm artifact is byte-identical ✓")


if __name__ == "__main__":
    main()
