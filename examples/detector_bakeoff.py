"""Detector bake-off: four detectors, one misbehaving network.

Deploys the time-free detector and the three timer-based baselines
(heartbeat, Friedman-Tcharny gossip, phi-accrual) on identical simulated
clusters, then hits them with the worst enemy of timeouts: a 400x delay
inflation mid-run (think sudden congestion or a route flap).  One process
(p1) has genuinely fast links — the responsiveness property RP — and a
crash happens later, so the run measures completeness *and* accuracy:

* detection time of the real crash,
* false suspicions of the responsive process (◇S's accuracy anchor),
* total false suspicions (transient noise),
* message load.

Run with::

    python examples/detector_bakeoff.py
"""

from repro.experiments.report import Table
from repro.experiments.scenarios import GOSSIP, HEARTBEAT, PHI, TIME_FREE, run_scenario
from repro.metrics import detection_stats, message_load, mistake_stats
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.latency import BiasedLatency, ExponentialLatency, RegimeShiftLatency

N = 12
F = 3
HORIZON = 90.0
SHIFT_AT = 20.0
CRASH_AT = 60.0
VICTIM = N
RESPONSIVE = 1


def latency_model():
    return BiasedLatency(
        RegimeShiftLatency(ExponentialLatency(0.003), shift_at=SHIFT_AT, factor=400.0),
        favored=frozenset({RESPONSIVE}),
        speedup=8.0,
        bidirectional=True,
    )


def main() -> None:
    table = Table(
        title=(
            f"detector bake-off: n={N}, f={F}, 400x delay inflation at "
            f"t={SHIFT_AT:.0f}s, crash of p{VICTIM} at t={CRASH_AT:.0f}s"
        ),
        headers=[
            "detector",
            "crash detect mean (s)",
            "crash detected by all",
            "false susp. of RP node",
            "total false susp.",
            "msgs/s/process",
        ],
    )
    plan = FaultPlan.of(crashes=[CrashFault(VICTIM, CRASH_AT)])
    for setup in (TIME_FREE, HEARTBEAT, GOSSIP, PHI):
        cluster = run_scenario(
            setup=setup,
            n=N,
            f=F,
            horizon=HORIZON,
            latency=latency_model(),
            fault_plan=plan,
            seed=2024,
        )
        correct = cluster.correct_processes()
        crash = detection_stats(cluster.trace, VICTIM, CRASH_AT, correct)
        mistakes = mistake_stats(cluster.trace, correct, horizon=HORIZON)
        rp_false = sum(
            len(cluster.trace.suspicion_intervals(obs, RESPONSIVE, horizon=HORIZON))
            for obs in correct
            if obs != RESPONSIVE
        )
        load = message_load(cluster.trace, horizon=HORIZON, n=N)
        table.add_row(
            setup.label,
            crash.mean_latency,
            crash.detected_by_all,
            rp_false,
            mistakes.count,
            load["total"],
        )
    table.add_note(
        "the RP-node column is the ◇S accuracy anchor: the time-free "
        "detector keeps it at 0 because delay inflation preserves response "
        "order; timeouts compare against absolute clocks and lose it."
    )
    print(table)


if __name__ == "__main__":
    main()
