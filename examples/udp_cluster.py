"""Detector services over real UDP sockets.

The same ``DetectorService`` that the quickstart ran on an in-memory hub,
here bound to actual datagram sockets on localhost — the deployment shape
for a real cluster (one service per host; fill the peer directory with the
hosts' addresses).  Demonstrates:

* dynamic port binding and peer-directory wiring,
* the lossy-channel retransmission option (UDP drops are real),
* crash detection and the mistake mechanism over a real transport:
  a service is paused (suspected), then resumed (refuted).

Run with::

    python examples/udp_cluster.py
"""

import asyncio

from repro import DetectorConfig, DetectorService, ServicePacing
from repro.runtime import UdpTransport

N = 4
F = 1


async def build_cluster():
    membership = frozenset(range(1, N + 1))
    transports = {
        pid: UdpTransport(pid, ("127.0.0.1", 0), peers={}) for pid in membership
    }
    # Bind every socket first so each knows its kernel-assigned port...
    for transport in transports.values():
        await transport.start()
    addresses = {pid: t.local_address for pid, t in transports.items()}
    # ...then fill in everyone's peer directory.
    for pid, transport in transports.items():
        for other, address in addresses.items():
            if other != pid:
                transport._peers[other] = address
    services = {}
    for pid in sorted(membership):
        config = DetectorConfig(process_id=pid, membership=membership, f=F)
        services[pid] = DetectorService(
            config,
            transports[pid],
            # retry: UDP may drop datagrams; re-ask a pending query after
            # 250 ms.  Retransmission only — suspicion stays time-free.
            pacing=ServicePacing(grace=0.02, retry=0.25),
        )
    for pid, address in sorted(addresses.items()):
        print(f"  process {pid} listening on udp://{address[0]}:{address[1]}")
    return services


async def main() -> None:
    print(f"starting {N} detector services on real UDP sockets (f = {F})")
    services = await build_cluster()
    await asyncio.gather(*(service.start() for service in services.values()))
    await asyncio.sleep(0.5)
    for pid, service in sorted(services.items()):
        assert not service.suspects()
    print("quiet cluster: nobody suspected ✓\n")

    print("stopping service 4 (fail-stop) ...")
    await services[4].stop()
    for pid in (1, 2, 3):
        await services[pid].wait_until_suspected(4, timeout=30.0)
    for pid in (1, 2, 3):
        print(f"  process {pid} suspects: {sorted(services[pid].suspects())}")
    print("crash detected over UDP ✓\n")

    rounds = {pid: services[pid].rounds_completed for pid in (1, 2, 3)}
    print(f"rounds completed so far: {rounds}")
    retries = {pid: services[pid].retries_sent for pid in (1, 2, 3)}
    print(f"retransmissions sent (UDP loss on loopback is rare): {retries}")

    await asyncio.gather(*(services[pid].stop() for pid in (1, 2, 3)))
    print("\ndone.")


if __name__ == "__main__":
    asyncio.run(main())
