"""Chen-style QoS scatter: every registered detector on one grid (q1).

Drives the ``q1`` QoS-comparison experiment through the public registry
API: resolve the spec (``get_experiment``), build params — the detector
axis defaults to **every** registered family, so a newly registered
detector joins the sweep with no changes here — evaluate the grid on a
process pool, and write the machine-readable scatter-table artifact
(``BENCH_Q1.json``).  The two scatter axes are detection time ``T_D`` and
query accuracy ``P_A``.

Run with::

    python examples/qos_scatter.py [out_dir]

``out_dir`` defaults to a scratch directory.
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments.api import get_experiment
from repro.harness import run_grid, write_artifact


def main() -> None:
    spec = get_experiment("q1")
    params = spec.make_params(n=10, f=2, trials=2, crash_at=6.0, horizon=18.0)
    print(f"sweeping {len(params.detectors)} registered detectors: "
          f"{', '.join(params.detectors)}")

    result = run_grid(spec, params, workers=2)
    table = result.tables()[0]
    print()
    print(table.render())

    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    artifact = write_artifact(out, result)
    print(f"\nscatter table artifact -> {artifact}")

    points = list(zip(
        table.column("detector"),
        table.column("detect mean (s)"),
        table.column("query accuracy P_A"),
    ))
    # NaN (a family that never detected, or had no monitored pairs)
    # poisons min()/max(), so rank each axis over its valid points only.
    detected = [point for point in points if point[1] == point[1]]
    accurate = [point for point in points if point[2] == point[2]]
    if detected:
        fastest = min(detected, key=lambda point: point[1])
        print(f"fastest detection: {fastest[0]} at {fastest[1]:.3f}s")
    else:
        print("no detector detected the crash within the horizon")
    if accurate:
        most_accurate = max(accurate, key=lambda point: point[2])
        print(f"highest query accuracy: {most_accurate[0]} at {most_accurate[2]:.4f}")


if __name__ == "__main__":
    main()
