"""Consensus surviving a coordinator crash — the detector's raison d'être.

Chandra & Toueg proved consensus solvable in an asynchronous system with a
◇S failure detector and a correct majority.  This example runs their
rotating-coordinator protocol on the deterministic simulator twice, with
the round-1 coordinator crashed at startup:

* over the **time-free detector** — recovery takes one query round;
* over a **timeout heartbeat detector** — recovery waits out Θ.

Same consensus code, same network, same crash; only the oracle differs.

Run with::

    python examples/consensus_cluster.py
"""

from repro.consensus import ConsensusHarness
from repro.sim import ExponentialLatency, QueryPacing
from repro.sim.cluster import heartbeat_driver_factory, time_free_driver_factory
from repro.sim.faults import CrashFault, FaultPlan


def run(label, fd_factory, *, seed=7):
    harness = ConsensusHarness(
        n=9,
        f=4,
        fd_driver_factory=fd_factory,
        latency=ExponentialLatency(0.001),  # δ ≈ 1 ms, unbounded tail
        seed=seed,
        # Process 1 coordinates round 1 — crash it before anyone proposes.
        fault_plan=FaultPlan.of(crashes=[CrashFault(1, 0.001)]),
        proposals={pid: f"value-from-{pid}" for pid in range(1, 10)},
        propose_at=0.01,
    )
    result = harness.run(until=60.0)
    assert result.agreement_holds and result.validity_holds
    assert result.all_correct_decided
    decided = next(iter(set(result.decisions.values())))
    print(f"{label}:")
    print(f"  decided value      : {decided!r}")
    print(f"  decision latency   : {result.last_decision_time:.3f} s")
    print(f"  rounds executed    : {max(result.rounds_executed.values())}")
    return result.last_decision_time


def main() -> None:
    print("consensus with the round-1 coordinator crashed at t≈0\n")
    tf = run(
        "time-free ◇S detector (Δ = 0.5 s query pacing)",
        time_free_driver_factory(4, QueryPacing(grace=0.5)),
    )
    hb = run(
        "heartbeat detector (Δ = 0.5 s, Θ = 1.0 s)",
        heartbeat_driver_factory(period=0.5, timeout=1.0),
    )
    print(f"\nrecovery speedup of the time-free detector: {hb / tf:.2f}x")
    print("(the heartbeat run must wait out its timeout before nacking;")
    print(" the time-free run only needs one query round to suspect)")


if __name__ == "__main__":
    main()
