#!/usr/bin/env python3
"""Run one large_n experiment cell under a hard address-space ceiling.

CI's large-n smoke: proves the columnar trace plane keeps an n=2000
cell inside a bounded memory envelope.  The ceiling is enforced with
``RLIMIT_AS`` *before* the cell runs, so a memory regression fails
with ``MemoryError`` instead of quietly leaning on a big runner — the
object-backend recorder's per-change suspect snapshots alone would
blow through it.  Peak RSS is reported either way.

Usage: python scripts/large_n_smoke.py [--exp e1] [--cell 0] [--limit-gb 2.0]
"""

from __future__ import annotations

import argparse
import resource
import sys
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exp", default="e1", help="experiment id (default: e1)")
    parser.add_argument(
        "--cell", type=int, default=0, help="grid index of the large_n cell to run"
    )
    parser.add_argument(
        "--limit-gb",
        type=float,
        default=2.0,
        help="hard RLIMIT_AS address-space ceiling in GiB (default: 2.0)",
    )
    args = parser.parse_args()

    limit = int(args.limit_gb * 1024**3)
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.harness import get_spec, run_cells

    spec = get_spec(args.exp)
    params = spec.make_params(preset="large_n")
    grid = spec.grid(params)
    coords = grid[args.cell]
    print(f"[large-n] {args.exp} preset large_n: cell {args.cell}/{len(grid)} "
          f"{coords} under a {args.limit_gb:g} GiB address-space ceiling")
    started = time.perf_counter()
    (value,) = run_cells(spec, params, [coords])
    elapsed = time.perf_counter() - started
    peak_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"[large-n] ok in {elapsed:.1f}s, peak RSS {peak_mib:.0f} MiB, "
          f"value keys {sorted(value)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
