#!/usr/bin/env python3
"""Check relative markdown links (and their #anchors) in the docs tree.

Scans README.md and docs/*.md for inline links, resolves relative targets
against the linking file, and fails when a target file — or a heading
anchor within it — does not exist.  External (http/mailto) links are not
fetched: CI must not flake on the network.  Stdlib only.

Usage: python scripts/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links, skipping images; code spans are stripped first.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = _CODE_RE.sub(lambda m: m.group(0).strip("`"), heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_in(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        text = path.read_text(encoding="utf-8")
        slugs: set[str] = set()
        seen: dict[str, int] = {}
        for match in _HEADING_RE.finditer(text):
            slug = github_slug(match.group(1))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        # Explicit <a name="..."> anchors also resolve.
        slugs.update(re.findall(r"<a\s+(?:name|id)=\"([^\"]+)\"", text))
        cache[path] = slugs
    return cache[path]


def check(root: Path) -> list[str]:
    sources = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    errors: list[str] = []
    cache: dict[Path, set[str]] = {}
    for source in sources:
        if not source.is_file():
            continue
        body = _CODE_RE.sub("", source.read_text(encoding="utf-8"))
        for lineno, line in enumerate(body.splitlines(), 1):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                where = f"{source.relative_to(root)}:{lineno}"
                path_part, _, anchor = target.partition("#")
                dest = (
                    source if not path_part else (source.parent / path_part).resolve()
                )
                if not dest.exists():
                    errors.append(f"{where}: broken link {target!r} (no such file)")
                    continue
                if anchor and dest.suffix == ".md":
                    if anchor not in anchors_in(dest, cache):
                        errors.append(
                            f"{where}: broken anchor {target!r} "
                            f"(no heading slugs to #{anchor})"
                        )
    return errors


def main() -> int:
    default_root = Path(__file__).resolve().parents[1]
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else default_root
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    sources = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    checked = sum(1 for p in sources if p.is_file())
    print(f"checked {checked} file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
